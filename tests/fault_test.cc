/**
 * @file
 * Fault-injection tests for the guarded online runtime: the spec parser,
 * graceful degradation under injected faults (the run completes and the
 * logical instruction stream never diverges from the unpatched program),
 * determinism of the injected fault sequence across worker counts, and
 * the thread pool's log-and-count handling of task errors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ir/instruction.hh"
#include "runtime/controller.hh"
#include "runtime/stats.hh"
#include "support/fault.hh"
#include "support/thread_pool.hh"
#include "trace/engine.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::runtime;

TEST(FaultConfig, ParsesBareRate)
{
    const Expected<fault::FaultConfig> fc =
        fault::FaultConfig::parse("0.25", 7);
    ASSERT_TRUE(fc.isOk()) << fc.status().message();
    for (std::size_t k = 0; k < fault::kNumKinds; ++k)
        EXPECT_DOUBLE_EQ(fc.value().rate[k], 0.25);
    EXPECT_EQ(fc.value().seed, 7u);
    EXPECT_TRUE(fc.value().enabled());
}

TEST(FaultConfig, ParsesKindList)
{
    const Expected<fault::FaultConfig> fc =
        fault::FaultConfig::parse("drop=0.1,synth-fail=0.5,verify-flip=1",
                                  0);
    ASSERT_TRUE(fc.isOk()) << fc.status().message();
    const fault::FaultConfig &c = fc.value();
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::DropBranch), 0.1);
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::SynthFail), 0.5);
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::VerifyFlip), 1.0);
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::Saturate), 0.0);
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::Alias), 0.0);
    EXPECT_DOUBLE_EQ(c.rateOf(fault::Kind::SynthDelay), 0.0);
}

TEST(FaultConfig, ParsesAllKeyword)
{
    const Expected<fault::FaultConfig> fc =
        fault::FaultConfig::parse("all=0.3", 1);
    ASSERT_TRUE(fc.isOk()) << fc.status().message();
    for (std::size_t k = 0; k < fault::kNumKinds; ++k)
        EXPECT_DOUBLE_EQ(fc.value().rate[k], 0.3);
}

TEST(FaultConfig, RejectsBadSpecs)
{
    EXPECT_FALSE(fault::FaultConfig::parse("", 0).isOk());
    EXPECT_FALSE(fault::FaultConfig::parse("1.5", 0).isOk());
    EXPECT_FALSE(fault::FaultConfig::parse("drop=-0.1", 0).isOk());
    EXPECT_FALSE(fault::FaultConfig::parse("typo=0.1", 0).isOk());
    EXPECT_FALSE(fault::FaultConfig::parse("drop=", 0).isOk());
    EXPECT_FALSE(fault::FaultConfig::parse("drop=0.1,,", 0).isOk());
}

TEST(FaultConfig, ParsesFleetKinds)
{
    const Expected<fault::FaultConfig> fc = fault::FaultConfig::parse(
        "tenant-crash=0.2,store-poison=0.1,torn-write=0.3", 3);
    ASSERT_TRUE(fc.isOk()) << fc.status().message();
    EXPECT_DOUBLE_EQ(fc.value().rateOf(fault::Kind::TenantCrash), 0.2);
    EXPECT_DOUBLE_EQ(fc.value().rateOf(fault::Kind::StorePoison), 0.1);
    EXPECT_DOUBLE_EQ(fc.value().rateOf(fault::Kind::TornWrite), 0.3);
    EXPECT_DOUBLE_EQ(fc.value().rateOf(fault::Kind::DropBranch), 0.0);
    EXPECT_TRUE(fc.value().enabled());
}

// ---------------------------------------------------------------------
// Quarantine backoff boundaries

/** A small self-matching phase record for quarantine bookkeeping. */
hsd::HotSpotRecord
quarantinePhase()
{
    hsd::HotSpotRecord rec;
    for (std::uint32_t i = 0; i < 4; ++i) {
        hsd::HotBranch hb;
        hb.behavior = 100 + i;
        hb.exec = 400;
        hb.taken = (i % 2) ? 390 : 10;
        rec.branches.push_back(hb);
    }
    return rec;
}

TEST(PackageCacheQuarantine, BackoffExpiresAtExactQuantum)
{
    PackageCache cache(0, hsd::FilterConfig{});
    const hsd::HotSpotRecord rec = quarantinePhase();
    EXPECT_FALSE(cache.quarantined(rec, 0));

    // First offense at quantum 10 charges min(16 << 0, 1024) = 16:
    // blocked through quantum 25, free again at exactly 26.
    EXPECT_EQ(cache.quarantine(rec, 10, 16, 1024), 1u);
    EXPECT_TRUE(cache.quarantined(rec, 10));
    EXPECT_TRUE(cache.quarantined(rec, 25));
    EXPECT_FALSE(cache.quarantined(rec, 26));

    // Expiry keeps the offense history: the second offense doubles the
    // charge (32 quanta from its own clock).
    EXPECT_EQ(cache.quarantine(rec, 30, 16, 1024), 2u);
    EXPECT_TRUE(cache.quarantined(rec, 61));
    EXPECT_FALSE(cache.quarantined(rec, 62));
    EXPECT_EQ(cache.quarantineCount(), 1u);
}

TEST(PackageCacheQuarantine, BackoffSaturatesAtCap)
{
    PackageCache cache(0, hsd::FilterConfig{});
    const hsd::HotSpotRecord rec = quarantinePhase();

    // Drive the doubling past the cap; the deadline pins at q + cap.
    for (int i = 0; i < 12; ++i)
        cache.quarantine(rec, 0, 16, 1024);
    EXPECT_TRUE(cache.quarantined(rec, 1023));
    EXPECT_FALSE(cache.quarantined(rec, 1024));

    // A later relapse still charges exactly the cap, never more.
    cache.quarantine(rec, 5000, 16, 1024);
    EXPECT_TRUE(cache.quarantined(rec, 5000 + 1023));
    EXPECT_FALSE(cache.quarantined(rec, 5000 + 1024));
}

TEST(PackageCacheQuarantine, SeededStateSurvivesRestart)
{
    PackageCache first(0, hsd::FilterConfig{});
    const hsd::HotSpotRecord rec = quarantinePhase();
    first.quarantine(rec, 10, 16, 1024); // until 26
    first.quarantine(rec, 20, 16, 1024); // until 52, offenses 2

    // Supervisor restart: the snapshot seeds a fresh incarnation whose
    // clock restarts at 0 while deadlines stay in the donor's clock —
    // deliberately conservative, the evidence does not reset just
    // because the process did.
    PackageCache second(0, hsd::FilterConfig{});
    second.seedQuarantine(first.quarantineEntries());
    EXPECT_EQ(second.quarantineCount(), 1u);
    EXPECT_TRUE(second.quarantined(rec, 0));
    EXPECT_TRUE(second.quarantined(rec, 51));
    EXPECT_FALSE(second.quarantined(rec, 52));

    // Offense history carried across the restart: the next offense is
    // the third, charging min(16 << 2, 1024) = 64 quanta.
    EXPECT_EQ(second.quarantine(rec, 60, 16, 1024), 3u);
    EXPECT_TRUE(second.quarantined(rec, 123));
    EXPECT_FALSE(second.quarantined(rec, 124));
}

TEST(FaultInjector, CounterStreamsAreSeedStable)
{
    fault::FaultConfig cfg;
    cfg.rate.fill(0.5);
    cfg.seed = 42;
    fault::FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        const auto k = static_cast<fault::Kind>(i % fault::kNumKinds);
        EXPECT_EQ(a.fire(k), b.fire(k));
        EXPECT_EQ(a.draw(k, 17), b.draw(k, 17));
    }
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_GT(a.stats().total(), 0u);
}

/** Records the logical branch trace: (behavior id, logical direction)
 *  per retired CondBr. The logical direction XORs out invertSense, so a
 *  relayouted package copy of a branch records the same event as the
 *  original — the trace is an observable program result that packaging
 *  must preserve. */
struct BranchTraceSink : trace::InstSink
{
    std::vector<std::pair<std::uint32_t, bool>> trace;

    void
    onRetire(const trace::RetiredInst &ri) override
    {
        if (ri.inst->op == ir::Opcode::CondBr)
            trace.emplace_back(ri.inst->behavior,
                               ri.branchTaken ^ ri.inst->invertSense);
    }
};

RuntimeConfig
faultedConfig(double rate, std::uint64_t seed)
{
    RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.budget = 400'000;
    const Expected<fault::FaultConfig> fc =
        fault::FaultConfig::parse(std::to_string(rate), seed);
    EXPECT_TRUE(fc.isOk());
    cfg.fault = fc.value();
    cfg.watchdog = true;
    return cfg;
}

/** Degradation invariant at @p rate: the run completes without aborting
 *  and its logical branch trace is a prefix-match of the unpatched
 *  program's — faults cost coverage, never correctness. Runs tiered by
 *  default; @p tiering false seeds the same faults through the
 *  single-tier pipeline. */
void
checkGracefulDegradation(double rate, bool tiering = true)
{
    workload::Workload w = workload::makeMcf("A");

    // Reference: the pristine program, no packaging at all.
    BranchTraceSink ref;
    {
        trace::ExecutionEngine eng(w.program, w);
        eng.addSink(&ref);
        eng.run(2'000'000); // past any packaged run's logical reach
    }
    ASSERT_GT(ref.trace.size(), 0u);

    BranchTraceSink got;
    RuntimeConfig cfg = faultedConfig(rate, 7);
    cfg.tiering = tiering;
    RuntimeController controller(w, cfg);
    controller.addSink(&got);
    const RuntimeStats s = controller.run();

    EXPECT_GT(s.quanta, 0u);
    EXPECT_GT(got.trace.size(), 0u);
    ASSERT_LE(got.trace.size(), ref.trace.size());
    // Find the first divergence (if any) for a readable failure.
    for (std::size_t i = 0; i < got.trace.size(); ++i) {
        ASSERT_EQ(got.trace[i], ref.trace[i])
            << "logical branch " << i << " diverged at fault rate "
            << rate;
    }

    // A gate rejection removes the bundle from the cache (a reinstall
    // attempt can be rejected after an earlier successful install, so
    // the quarantined bundle must merely end up not resident).
    for (const BundleStats &b : s.bundles) {
        if (b.rejected) {
            EXPECT_TRUE(b.evicted());
            EXPECT_FALSE(b.residentAtEnd);
        }
    }
}

TEST(FaultRuntime, GracefulDegradationAtTenPercent)
{
    checkGracefulDegradation(0.1);
}

TEST(FaultRuntime, GracefulDegradationAtFiftyPercent)
{
    checkGracefulDegradation(0.5);
}

TEST(FaultRuntime, GracefulDegradationUntiered)
{
    checkGracefulDegradation(0.5, /*tiering=*/false);
}

TEST(FaultRuntime, PromotionGateRejectKeepsTierZeroServing)
{
    // Corrupt only the install gate's verdict. When a flipped verdict
    // hits a tier-1 promotion whose tier-0 twin is healthy and
    // resident, the controller must reject the tier-1 bundle *without*
    // deopting the twin (counted as promotionGateRejects) — the phase
    // keeps being served by fast-install code rather than falling back
    // to nothing.
    std::size_t gate_rejects = 0;
    for (std::uint64_t seed = 1; seed <= 8 && !gate_rejects; ++seed) {
        // go A has a dozen promotions per run, so a flipped verdict is
        // all but certain to land on a tier-1 with a live twin.
        workload::Workload w = workload::makeGo("A");
        RuntimeConfig cfg;
        cfg.vp = VpConfig::variant(true, true);
        const Expected<fault::FaultConfig> fc =
            fault::FaultConfig::parse("verify-flip=0.5", seed);
        ASSERT_TRUE(fc.isOk());
        cfg.fault = fc.value();
        RuntimeController controller(w, cfg);
        const RuntimeStats s = controller.run();
        gate_rejects += s.promotionGateRejects;
        if (s.promotionGateRejects) {
            EXPECT_GT(s.tier0Installs, 0u);
            // The kept twin really served: packaged code still retired.
            EXPECT_GT(s.packageCoverage(), 0.0);
            EXPECT_GT(s.verifierRejects, 0u);
        }
    }
    EXPECT_GT(gate_rejects, 0u);
}

TEST(FaultRuntime, QuarantineBlocksInstallsAndDetections)
{
    // Under a broad fault mix the quarantine list must intercept both
    // ends of the pipeline: fresh detections of an offending phase
    // (quarantineSkips) and bundles that finished building or queued an
    // activation before their phase was quarantined
    // (quarantineBlockedInstalls — the quarantine-before-loose-match
    // rule: backoff state is consulted again at install time, so a
    // stale loose match cannot smuggle a blocked phase back in).
    std::size_t blocked = 0, skips = 0;
    for (std::uint64_t seed = 1; seed <= 10 && !(blocked && skips);
         ++seed) {
        workload::Workload w = workload::makeMcf("A");
        RuntimeConfig cfg = faultedConfig(0.5, seed);
        RuntimeController controller(w, cfg);
        const RuntimeStats s = controller.run();
        blocked += s.quarantineBlockedInstalls;
        skips += s.quarantineSkips;
        EXPECT_GT(s.quanta, 0u);
    }
    EXPECT_GT(blocked, 0u);
    EXPECT_GT(skips, 0u);
}

TEST(FaultRuntime, CoverageDegradesButRunSurvives)
{
    workload::Workload w = workload::makeMcf("A");

    RuntimeConfig clean;
    clean.vp = VpConfig::variant(true, true);
    clean.budget = 400'000;
    RuntimeController base(w, clean);
    const RuntimeStats cs = base.run();

    RuntimeController faulted(w, faultedConfig(0.5, 7));
    const RuntimeStats fs = faulted.run();

    EXPECT_GT(fs.faults.total(), 0u);
    EXPECT_LE(fs.packageCoverage(), cs.packageCoverage());
    // The guarded paths actually engaged: at a 50% rate across every
    // kind, at least one detection or job must have been deflected.
    EXPECT_GT(fs.failedBuilds + fs.verifierRejects + fs.quarantines +
                  fs.quarantineSkips + fs.watchdogDeopts,
              0u);
}

TEST(FaultRuntime, FaultSequenceIsIdenticalAcrossWorkerCounts)
{
    workload::Workload w = workload::makeMcf("A");
    std::string texts[3];
    const unsigned counts[3] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
        RuntimeConfig cfg = faultedConfig(0.5, 11);
        cfg.workers = counts[i];
        RuntimeController controller(w, cfg);
        texts[i] = toText(controller.run(), w.label());
    }
    EXPECT_EQ(texts[0], texts[1]);
    EXPECT_EQ(texts[0], texts[2]);
}

TEST(FaultRuntime, DifferentSeedsDifferentFaults)
{
    workload::Workload w = workload::makeMcf("A");
    RuntimeController a(w, faultedConfig(0.5, 1));
    RuntimeController b(w, faultedConfig(0.5, 2));
    const RuntimeStats sa = a.run();
    const RuntimeStats sb = b.run();
    // Both runs survive; the injected sequences are seed-dependent.
    EXPECT_GT(sa.faults.total() + sb.faults.total(), 0u);
}

TEST(ThreadPool, CountsAndDropsSubsequentTaskErrors)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i) {
        pool.submit([&ran] {
            ++ran;
            throw std::runtime_error("task failed");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 5);
    const ThreadPool::ErrorStats es = pool.errorStats();
    EXPECT_EQ(es.taskErrors, 5u);
    EXPECT_EQ(es.droppedErrors, 4u);
}

TEST(ThreadPool, ErrorStatsStayZeroOnCleanBatches)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 8);
    const ThreadPool::ErrorStats es = pool.errorStats();
    EXPECT_EQ(es.taskErrors, 0u);
    EXPECT_EQ(es.droppedErrors, 0u);
}

} // namespace
