/**
 * @file
 * End-to-end pipeline tests: for every Table 1 workload and every
 * inference/linking variant, the packaged program must verify, preserve
 * the logical branch stream, and produce sane coverage/expansion; plus
 * tests for the evaluation helpers (categorization, aggregate profile,
 * speedup measurement).
 */

#include <gtest/gtest.h>

#include "ir/verify.hh"
#include "support/rng.hh"
#include "tests/helpers.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;

struct PipelineCase
{
    std::string name;
    std::string input;
};

std::vector<PipelineCase>
allCases()
{
    std::vector<PipelineCase> cases;
    for (const auto &spec : workload::allBenchmarks()) {
        for (const auto &input : spec.inputs)
            cases.push_back({spec.name, input});
    }
    return cases;
}

/**
 * Rolling digest of the logical (pre-flip) conditional-branch stream,
 * with per-branch history so two runs of different lengths can be
 * compared on their common prefix (packaging removes calls/jumps, so the
 * packaged run fits more branches into the same instruction budget).
 */
class StreamDigest : public trace::InstSink
{
  public:
    void
    onRetire(const trace::RetiredInst &ri) override
    {
        if (ri.inst->op != Opcode::CondBr)
            return;
        const bool logical = ri.branchTaken ^ ri.inst->invertSense;
        digest = splitmix64(digest ^ ri.inst->behavior) + (logical ? 1 : 0);
        history.push_back(digest);
    }

    std::uint64_t
    digestAt(std::size_t branches) const
    {
        return branches ? history.at(branches - 1) : 0xfeed;
    }

    std::size_t count() const { return history.size(); }

    std::uint64_t digest = 0xfeed;
    std::vector<std::uint64_t> history;
};

class PipelineAllBenchmarks : public ::testing::TestWithParam<PipelineCase>
{
  protected:
    workload::Workload
    load() const
    {
        workload::Workload w =
            workload::makeWorkload(GetParam().name, GetParam().input);
        // Trimmed budget keeps the parameterized sweep fast while still
        // spanning several phases.
        w.maxDynInsts = std::min<std::uint64_t>(w.maxDynInsts, 500'000);
        return w;
    }
};

TEST_P(PipelineAllBenchmarks, FullConfigProducesValidPackagedProgram)
{
    const workload::Workload w = load();
    VacuumPacker packer(w, VpConfig::variant(true, true));
    const VpResult r = packer.run();

    EXPECT_TRUE(verify(r.packaged.program).empty());
    EXPECT_GE(r.records.size(), 1u) << "no hot spots detected";
    EXPECT_EQ(r.regions.size(), r.records.size());
    EXPECT_GE(r.packaged.packages.size(), 1u);
    // Filtering must have removed something (phases repeat).
    EXPECT_LE(r.records.size(), r.rawRecords.size());
}

TEST_P(PipelineAllBenchmarks, PackagedRunPreservesLogicalBranchStream)
{
    const workload::Workload w = load();
    VacuumPacker packer(w, VpConfig::variant(true, true));
    const VpResult r = packer.run();

    StreamDigest orig, packed;
    {
        trace::ExecutionEngine e(w.program, w);
        e.addSink(&orig);
        e.run(w.maxDynInsts);
    }
    {
        trace::ExecutionEngine e(r.packaged.program, w);
        e.addSink(&packed);
        e.run(w.maxDynInsts);
    }
    // Packaging elides calls/rets/jumps, so the packaged run retires at
    // least as many branches within the same instruction budget; the
    // common prefix must be bit-identical.
    EXPECT_GE(packed.count(), orig.count());
    const std::size_t common = std::min(orig.count(), packed.count());
    ASSERT_GT(common, 1'000u);
    EXPECT_EQ(orig.digestAt(common), packed.digestAt(common));
}

TEST_P(PipelineAllBenchmarks, AllFourVariantsAreValidAndOrdered)
{
    const workload::Workload w = load();
    double cov[2][2];
    for (const bool inference : {false, true}) {
        for (const bool linking : {false, true}) {
            VacuumPacker packer(w, VpConfig::variant(inference, linking));
            const VpResult r = packer.run();
            EXPECT_TRUE(verify(r.packaged.program).empty())
                << "inference=" << inference << " linking=" << linking;
            const auto stats = measureCoverage(w, r.packaged.program);
            cov[inference][linking] = stats.packageCoverage();
        }
    }
    // Linking can only add reachability; allow a small tolerance for
    // second-order effects of different orderings.
    EXPECT_GE(cov[1][1], cov[1][0] - 0.03);
    EXPECT_GE(cov[0][1], cov[0][0] - 0.03);
}

TEST_P(PipelineAllBenchmarks, ExpansionAccountingIsConsistent)
{
    const workload::Workload w = load();
    VacuumPacker packer(w, VpConfig::variant(true, true));
    const VpResult r = packer.run();
    const auto &pp = r.packaged;
    EXPECT_EQ(pp.originalInsts, w.program.numInsts());
    EXPECT_GT(pp.addedInsts, 0u);
    EXPECT_LE(pp.selectedFraction(), 1.0);
    // Inlining elides call/ret instructions, so a package can carry
    // slightly fewer instructions than its selected origins.
    EXPECT_GE(pp.replicationFactor(), 0.85);
    // Packaged program contains everything.
    EXPECT_GE(pp.program.numInsts(), pp.originalInsts);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PipelineAllBenchmarks, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<PipelineCase> &info) {
        std::string n = info.param.name + "_" + info.param.input;
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

// ------------------------------------------------------------- evaluation

TEST(Evaluate, CategorizationFractionsSumToOne)
{
    workload::Workload w = workload::makeWorkload("134.perl", "A");
    w.maxDynInsts = 500'000;
    VacuumPacker packer(w, VpConfig{});
    VpResult r;
    packer.profile(r);
    const Categorization cat = categorizeBranches(w, r.records);
    double sum = 0;
    for (double f : cat.fraction)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Evaluate, MultiPhaseBranchesDetected)
{
    workload::Workload w = workload::makeWorkload("134.perl", "A");
    VacuumPacker packer(w, VpConfig{});
    VpResult r;
    packer.profile(r);
    ASSERT_GE(r.records.size(), 2u);
    const Categorization cat = categorizeBranches(w, r.records);
    const double multi = cat.of(BranchCategory::MultiSame) +
                         cat.of(BranchCategory::MultiLow) +
                         cat.of(BranchCategory::MultiHigh) +
                         cat.of(BranchCategory::MultiNoBias);
    // perl's dispatch loop executes in every phase.
    EXPECT_GT(multi, 0.1);
    // And its dispatch branch swings hard between phases.
    EXPECT_GT(cat.of(BranchCategory::MultiHigh) +
                  cat.of(BranchCategory::MultiLow),
              0.0);
}

TEST(Evaluate, CategoryNamesAreStable)
{
    EXPECT_STREQ(branchCategoryName(BranchCategory::UniqueBiased),
                 "Unique Biased");
    EXPECT_STREQ(branchCategoryName(BranchCategory::MultiHigh),
                 "Multi High");
    EXPECT_STREQ(branchCategoryName(BranchCategory::NotDetected),
                 "Not Detected");
}

TEST(Evaluate, AggregateRecordSumsCounts)
{
    hsd::HotSpotRecord a, b;
    hsd::HotBranch h1;
    h1.behavior = 1;
    h1.exec = 100;
    h1.taken = 90;
    hsd::HotBranch h2;
    h2.behavior = 2;
    h2.exec = 50;
    h2.taken = 5;
    a.branches = {h1, h2};
    hsd::HotBranch h1b = h1;
    h1b.exec = 200;
    h1b.taken = 20;
    b.branches = {h1b};

    const hsd::HotSpotRecord agg = aggregateRecord({a, b});
    ASSERT_EQ(agg.branches.size(), 2u);
    const hsd::HotBranch *m = agg.find(1);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->exec, 300u);
    EXPECT_EQ(m->taken, 110u);
    // The aggregate hides the phase swing: 110/300 looks mildly biased
    // while the phases were 90% and 10% — the paper's Section 5.3 point.
    EXPECT_NEAR(m->takenFraction(), 0.366, 0.01);
}

TEST(Evaluate, SpeedupMeasurementRunsBothSides)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VacuumPacker packer(t.w, VpConfig::variant(true, true));
    const VpResult r = packer.run();
    const SpeedupResult sp = measureSpeedup(t.w, r.packaged.program);
    EXPECT_GT(sp.baseline.cycles, 0u);
    EXPECT_GT(sp.packaged.cycles, 0u);
    EXPECT_GT(sp.speedup(), 0.5);
    EXPECT_LT(sp.speedup(), 2.0);
    EXPECT_EQ(sp.baseline.insts >= sp.packaged.insts, true)
        << "packaging may only remove instructions (calls/rets/jumps)";
}

TEST(Evaluate, AggregateBaselineProducesPackages)
{
    // The HCO-style ablation: one region from the merged profile.
    workload::Workload w = workload::makeWorkload("197.parser", "A");
    w.maxDynInsts = 400'000;
    VacuumPacker packer(w, VpConfig{});
    VpResult r;
    packer.profile(r);
    ASSERT_GE(r.records.size(), 1u);
    const hsd::HotSpotRecord agg = aggregateRecord(r.records);
    const auto region =
        region::identifyRegion(w.program, agg, packer.config().region);
    const auto pp = package::buildPackages(w.program, {region},
                                           packer.config().package);
    EXPECT_TRUE(verify(pp.program).empty());
    EXPECT_GE(pp.packages.size(), 1u);
    const auto cov = measureCoverage(w, pp.program);
    EXPECT_GT(cov.packageCoverage(), 0.2);
}

TEST(VpConfigTest, VariantsSetTheRightKnobs)
{
    const VpConfig v00 = VpConfig::variant(false, false);
    EXPECT_FALSE(v00.region.inference);
    EXPECT_FALSE(v00.package.linking);
    const VpConfig v10 = VpConfig::variant(true, false);
    EXPECT_TRUE(v10.region.inference);
    EXPECT_FALSE(v10.package.linking);
    const VpConfig v11 = VpConfig::variant(true, true);
    EXPECT_TRUE(v11.region.inference);
    EXPECT_TRUE(v11.package.linking);
}

TEST(PipelineSteps, CanBeRunIncrementally)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VacuumPacker packer(t.w, VpConfig{});
    VpResult r;
    packer.profile(r);
    EXPECT_FALSE(r.records.empty());
    EXPECT_TRUE(r.regions.empty());
    packer.identify(r);
    EXPECT_EQ(r.regions.size(), r.records.size());
    EXPECT_TRUE(r.packaged.packages.empty());
    packer.construct(r);
    EXPECT_FALSE(r.packaged.packages.empty());
}

} // namespace
