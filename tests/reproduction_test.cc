/**
 * @file
 * Reproduction guards: tolerant assertions pinning the headline shapes
 * of the paper's evaluation, so that future changes to any pipeline
 * stage cannot silently regress the reproduction documented in
 * EXPERIMENTS.md. Bounds are deliberately loose — they encode *claims*
 * (who wins, roughly by how much), not exact numbers.
 */

#include <gtest/gtest.h>

#include "support/stats.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "vp/report.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;

double
coverage(const workload::Workload &w, bool inference, bool linking)
{
    VacuumPacker packer(w, VpConfig::variant(inference, linking));
    const VpResult r = packer.run();
    return measureCoverage(w, r.packaged.program).packageCoverage();
}

// Figure 8's headline: the full configuration captures the large
// majority of execution.
TEST(Reproduction, FullConfigCoverageIsInThePaperBand)
{
    double sum = 0;
    int n = 0;
    for (const char *name :
         {"134.perl", "124.m88ksim", "181.mcf", "164.gzip", "175.vpr"}) {
        workload::Workload w = workload::makeWorkload(name, "A");
        sum += coverage(w, true, true);
        ++n;
    }
    EXPECT_GT(sum / n, 0.80) << "paper reports ~81% average";
}

// Figure 8: linking rescues the shared-launch-point benchmarks the paper
// names (m88ksim's two loader phases being the canonical case).
TEST(Reproduction, LinkingRescuesM88ksim)
{
    workload::Workload w = workload::makeWorkload("124.m88ksim", "A");
    const double without = coverage(w, true, false);
    const double with = coverage(w, true, true);
    EXPECT_GT(with, without + 0.15);
    EXPECT_GT(with, 0.9);
}

// Figure 8: inference repairs BBB-contention losses (175.vpr).
TEST(Reproduction, InferenceRepairsVpr)
{
    workload::Workload w = workload::makeWorkload("175.vpr", "A");
    const double without = coverage(w, false, true);
    const double with = coverage(w, true, true);
    EXPECT_GT(with, without + 0.05);
}

// Section 5.1's 130.li remark: the weak-caller pattern costs coverage
// that no configuration recovers (the callee cannot root a package).
TEST(Reproduction, LiWeakCallerLossPersists)
{
    workload::Workload w = workload::makeWorkload("130.li", "A");
    const double cov = coverage(w, true, true);
    EXPECT_LT(cov, 0.95) << "the ~10% structural loss should remain";
    EXPECT_GT(cov, 0.70);
}

// Table 3's headline: moderate growth, small selected fraction,
// replication of a few.
TEST(Reproduction, ExpansionStaysModerate)
{
    double growth = 0, selected = 0;
    int n = 0;
    for (const char *name : {"134.perl", "164.gzip", "300.twolf"}) {
        workload::Workload w = workload::makeWorkload(name, "A");
        VacuumPacker packer(w, VpConfig::variant(true, true));
        const VpResult r = packer.run();
        growth += r.packaged.expansion();
        selected += r.packaged.selectedFraction();
        ++n;
    }
    EXPECT_LT(growth / n, 0.25) << "paper average is 12%";
    EXPECT_LT(selected / n, 0.10) << "paper average is 4.5%";
    EXPECT_GT(selected / n, 0.005);
}

// Figure 10's headline: relayout + rescheduling of packages is a net
// win under the full configuration.
TEST(Reproduction, FullConfigSpeedupIsPositive)
{
    GeoMean g;
    for (const char *name : {"134.perl", "164.gzip", "300.twolf",
                             "132.ijpeg"}) {
        workload::Workload w = workload::makeWorkload(name, "A");
        VacuumPacker packer(w, VpConfig::variant(true, true));
        const VpResult r = packer.run();
        g.add(measureSpeedup(w, r.packaged.program,
                             packer.config().machine)
                  .speedup());
    }
    EXPECT_GT(g.value(), 1.05);
    EXPECT_LT(g.value(), 1.6) << "suspiciously large: check for a "
                                 "measurement bias";
}

// Figure 9's premise: a significant dynamic-branch slice lives in
// branches whose bias swings across phases (the specialization target).
TEST(Reproduction, MultiPhaseBiasSwingsExist)
{
    workload::Workload w = workload::makeWorkload("181.mcf", "A");
    VacuumPacker packer(w, VpConfig{});
    VpResult r;
    packer.profile(r);
    const Categorization cat = categorizeBranches(w, r.records);
    EXPECT_GT(cat.of(BranchCategory::MultiHigh) +
                  cat.of(BranchCategory::MultiLow),
              0.05);
}

// The HSD's lossiness premise: hardware records are incomplete relative
// to the true working set, yet the pipeline still covers execution.
TEST(Reproduction, RecordsAreLossyYetSufficient)
{
    workload::Workload w = workload::makeWorkload("175.vpr", "A");
    VacuumPacker packer(w, VpConfig::variant(true, true));
    VpResult r;
    packer.profile(r);
    // The conflict farm guarantees at least one hot branch is missing
    // from every placement-phase record.
    std::size_t static_branches = 0;
    for (const auto &fn : w.program.functions()) {
        for (const auto &bb : fn.blocks())
            static_branches += bb.endsInCondBr() ? 1 : 0;
    }
    for (const auto &rec : r.records)
        EXPECT_LT(rec.branches.size(), static_branches);
    packer.identify(r);
    packer.construct(r);
    EXPECT_GT(measureCoverage(w, r.packaged.program).packageCoverage(),
              0.9);
}

} // namespace
