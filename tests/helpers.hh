/**
 * @file
 * Shared fixtures for the test suite: tiny hand-built workloads with
 * known structure.
 */

#ifndef VP_TESTS_HELPERS_HH
#define VP_TESTS_HELPERS_HH

#include "hsd/record.hh"
#include "workload/builder.hh"
#include "workload/workload.hh"

namespace vp::test
{

/**
 * A minimal two-phase workload: main calls a dispatcher `loop` that
 * alternates between two workers, `alpha` (hot in phase 0) and `beta`
 * (hot in phase 1).
 *
 *   main -> loop { if (d) alpha() else beta(); } back-edge
 *   alpha: small loop, 2 diamonds
 *   beta:  small loop, 2 diamonds
 */
struct TinyWorkload
{
    workload::Workload w;
    ir::FuncId main = 0, loop = 0, alpha = 0, beta = 0;
    ir::BehaviorId dispatchBr = 0;
};

/** Build the tiny two-phase workload (see above). */
TinyWorkload makeTiny(std::uint64_t seed = 42,
                      std::uint64_t budget = 400'000);

/**
 * A single-function diamond + loop workload for structural unit tests:
 *
 *   B0 (entry) -> B1 cond -> {B2 taken, B3 fall} -> B4 latch -> B1 | B5 ret
 */
struct DiamondLoop
{
    workload::Workload w;
    ir::FuncId f = 0;
    ir::BlockId b0 = 0, b1 = 0, b2 = 0, b3 = 0, b4 = 0, b5 = 0;
    ir::BehaviorId condBr = 0, latchBr = 0;
};

/**
 * @param cond_probs Per-phase taken probability of the diamond branch.
 * @param latch_iters Per-phase mean loop trip counts.
 */
DiamondLoop makeDiamondLoop(std::vector<double> cond_probs = {0.8},
                            std::vector<double> latch_iters = {50.0},
                            std::uint64_t budget = 100'000);

/**
 * Reconstruction of the paper's Figure 3 example (functions A and B; see
 * helpers.cc for the exact CFG). Shared by the region- and
 * package-construction tests.
 */
struct Figure3
{
    workload::Workload w;
    ir::FuncId A = 0, B = 0;
    ir::BlockId a1, a2, a3, a4, a5, a6, a7, a8, a9, a10;
    ir::BlockId b1, b2, b4, b5, b6;
    ir::BehaviorId brA2 = 0, brA4 = 0, brA9 = 0, brB2 = 0, brB4 = 0;
};

Figure3 makeFigure3();

/** The 4-entry BBB snapshot of Figure 3(a): A2, A4, A9, B4. */
hsd::HotSpotRecord figure3Record(const Figure3 &fig);

} // namespace vp::test

#endif // VP_TESTS_HELPERS_HH
