/**
 * @file
 * Tests for the workload-report API: the analysis is complete,
 * self-consistent with the underlying measurements, deterministic, and
 * renders every configuration.
 */

#include <gtest/gtest.h>

#include "tests/helpers.hh"
#include "vp/report.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;

TEST(Report, CoversAllFourConfigurations)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    const WorkloadReport r = analyzeWorkload(t.w);
    EXPECT_EQ(r.label, "tiny A");
    EXPECT_FALSE(r.configs[0].inference);
    EXPECT_FALSE(r.configs[0].linking);
    EXPECT_TRUE(r.configs[3].inference);
    EXPECT_TRUE(r.configs[3].linking);
    for (const auto &cr : r.configs) {
        EXPECT_GE(cr.rawRecords, cr.uniqueHotSpots);
        EXPECT_GT(cr.packages, 0u);
        EXPECT_GT(cr.coverage, 0.0);
        EXPECT_LE(cr.coverage, 1.0);
        EXPECT_GT(cr.speedup, 0.5);
        EXPECT_GT(cr.baseline.cycles, 0u);
        EXPECT_GT(cr.packaged.cycles, 0u);
    }
}

TEST(Report, FullConfigAccessor)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    const WorkloadReport r = analyzeWorkload(t.w);
    EXPECT_TRUE(r.full().inference);
    EXPECT_TRUE(r.full().linking);
}

TEST(Report, CategorizationSumsToOne)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    const WorkloadReport r = analyzeWorkload(t.w);
    double sum = 0;
    for (double f : r.categorization.fraction)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Report, Deterministic)
{
    test::TinyWorkload t1 = test::makeTiny(42, 200'000);
    test::TinyWorkload t2 = test::makeTiny(42, 200'000);
    const WorkloadReport a = analyzeWorkload(t1.w);
    const WorkloadReport b = analyzeWorkload(t2.w);
    for (std::size_t i = 0; i < a.configs.size(); ++i) {
        EXPECT_EQ(a.configs[i].packages, b.configs[i].packages);
        EXPECT_DOUBLE_EQ(a.configs[i].coverage, b.configs[i].coverage);
        EXPECT_EQ(a.configs[i].baseline.cycles,
                  b.configs[i].baseline.cycles);
    }
}

TEST(Report, TextRendersEveryConfig)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    const std::string text = toText(analyzeWorkload(t.w));
    EXPECT_NE(text.find("tiny A"), std::string::npos);
    EXPECT_NE(text.find("noinf+nolink"), std::string::npos);
    EXPECT_NE(text.find("inf+link"), std::string::npos);
    EXPECT_NE(text.find("coverage"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);
    EXPECT_NE(text.find("branch categorization"), std::string::npos);
}

TEST(Report, RespectsBaseConfigOverrides)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VpConfig base;
    base.hsd.historyDepth = 2; // suppress re-recordings in all variants
    const WorkloadReport with = analyzeWorkload(t.w, base);
    const WorkloadReport without = analyzeWorkload(t.w);
    EXPECT_LT(with.full().rawRecords, without.full().rawRecords);
}

} // namespace
