/**
 * @file
 * Edge cases and failure injection across the pipeline: degenerate
 * inputs (no regions, empty records, zero budgets), hostile
 * configurations (extreme thresholds), deep recursion, and robustness of
 * each stage to inputs its neighbors should never produce but might.
 */

#include <gtest/gtest.h>

#include "hsd/detector.hh"
#include "hsd/filter.hh"
#include "ir/verify.hh"
#include "opt/optimizer.hh"
#include "package/packager.hh"
#include "region/identify.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;

// ------------------------------------------------------------- degenerate

TEST(Edge, NoRegionsYieldsUntouchedClone)
{
    test::TinyWorkload t = test::makeTiny();
    const auto pp = package::buildPackages(t.w.program, {});
    EXPECT_TRUE(pp.packages.empty());
    EXPECT_EQ(pp.numLinks, 0u);
    EXPECT_EQ(pp.numLaunchPoints, 0u);
    EXPECT_EQ(pp.addedInsts, 0u);
    EXPECT_EQ(pp.program.numInsts(), t.w.program.numInsts());
    EXPECT_TRUE(verify(pp.program).empty());

    // And the clone executes identically.
    trace::ExecutionEngine e1(t.w.program, t.w);
    trace::ExecutionEngine e2(pp.program, t.w);
    const auto s1 = e1.run(50'000);
    const auto s2 = e2.run(50'000);
    EXPECT_EQ(s1.dynInsts, s2.dynInsts);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
    EXPECT_EQ(s2.instsInPackages, 0u);
}

TEST(Edge, EmptyRecordYieldsEmptyRegionAndNoPackages)
{
    test::TinyWorkload t = test::makeTiny();
    const hsd::HotSpotRecord empty;
    const auto region =
        region::identifyRegion(t.w.program, empty, region::RegionConfig{});
    EXPECT_EQ(region.numHotBlocks(), 0u);
    EXPECT_TRUE(region.hotFuncs().empty());
    const auto pp = package::buildPackages(t.w.program, {region});
    EXPECT_TRUE(pp.packages.empty());
    EXPECT_TRUE(verify(pp.program).empty());
}

TEST(Edge, ZeroInstructionBudget)
{
    test::TinyWorkload t = test::makeTiny();
    trace::ExecutionEngine e(t.w.program, t.w);
    const auto stats = e.run(0);
    EXPECT_EQ(stats.dynInsts, 0u);
    EXPECT_EQ(stats.dynBranches, 0u);
}

TEST(Edge, ZeroBranchBudget)
{
    test::TinyWorkload t = test::makeTiny();
    trace::ExecutionEngine e(t.w.program, t.w);
    const auto stats = e.run(100'000, 0);
    EXPECT_EQ(stats.dynBranches, 0u);
    // May retire the pre-branch instructions of the first blocks only.
    EXPECT_LT(stats.dynInsts, 64u);
}

TEST(Edge, DuplicateRegionsProduceDistinctPackages)
{
    // Two identical regions (the software filter failed): packaging must
    // still produce well-formed, linkable siblings.
    test::TinyWorkload t = test::makeTiny();
    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = t.dispatchBr;
    hb.exec = 400;
    hb.taken = 360;
    rec.branches.push_back(hb);
    const auto region =
        region::identifyRegion(t.w.program, rec, region::RegionConfig{});
    const auto pp = package::buildPackages(t.w.program, {region, region});
    // The region has three roots (the dispatch loop plus the two workers,
    // whose prologue-only marking is uninlinable); duplicated regions
    // double every one of them.
    EXPECT_EQ(pp.packages.size(), 6u);
    EXPECT_TRUE(verify(pp.program).empty());
    trace::ExecutionEngine e(pp.program, t.w);
    const auto s = e.run(100'000);
    EXPECT_GT(s.packageCoverage(), 0.0);
}

// ------------------------------------------------------- hostile configs

TEST(Edge, EverythingColdThresholds)
{
    // hotArcFraction > 1 makes every recorded arc Cold unless its weight
    // clears the execution threshold; with both maxed, regions shrink to
    // the recorded blocks and packaging still works.
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VpConfig cfg;
    cfg.region.hotArcFraction = 2.0;
    cfg.region.hotArcWeightThreshold = 1e9;
    VacuumPacker packer(t.w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());
    for (const auto &pkg : r.packaged.packages) {
        const auto &P = r.packaged.program.func(pkg.func);
        // Every branch block's two arcs lead to exits (all arcs cold).
        for (const auto &bb : P.blocks()) {
            if (!bb.endsInCondBr())
                continue;
            for (const BlockRef &tr : {bb.taken, bb.fall}) {
                if (tr.valid() && tr.func == pkg.func) {
                    EXPECT_EQ(P.block(tr.block).kind, BlockKind::Exit);
                }
            }
        }
    }
}

TEST(Edge, EverythingHotThresholds)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VpConfig cfg;
    cfg.region.hotArcFraction = 0.0; // every recorded arc hot
    cfg.region.hotArcWeightThreshold = 0.0;
    VacuumPacker packer(t.w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());
    EXPECT_GE(r.packaged.packages.size(), 1u);
}

TEST(Edge, TinyBbbStillWorks)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    VpConfig cfg;
    cfg.hsd.sets = 1;
    cfg.hsd.ways = 1;
    VacuumPacker packer(t.w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());
    for (const auto &rec : r.records)
        EXPECT_LE(rec.branches.size(), 1u);
}

TEST(Edge, InliningCapsRespected)
{
    workload::Workload w = workload::makeWorkload("255.vortex", "A");
    w.maxDynInsts = 400'000;
    VpConfig cfg;
    cfg.package.maxCtxDepth = 1;
    cfg.package.maxInlineCopiesPerFunc = 1;
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());
    for (const auto &pkg : r.packaged.packages) {
        for (const auto &ctx : pkg.ctx)
            EXPECT_LE(ctx.size(), 1u);
    }
}

TEST(Edge, MaxPackageBlocksBoundsGrowth)
{
    workload::Workload w = workload::makeWorkload("134.perl", "A");
    w.maxDynInsts = 400'000;
    VpConfig cfg;
    cfg.package.maxPackageBlocks = 12;
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());
    for (const auto &pkg : r.packaged.packages) {
        // Compaction may shrink below the bound; construction never
        // exceeds it by more than one pruned-callee install.
        EXPECT_LE(r.packaged.program.func(pkg.func).numBlocks(), 24u);
    }
}

// ------------------------------------------------------------- recursion

TEST(Edge, DeepRecursionUnwindsCorrectly)
{
    // r(n) recurses with p(taken)=0.9 -> expected depth ~10, tail ~100s.
    workload::ProgramBuilder b("deep", 5);
    const FuncId r = b.function("r", 8);
    const BlockId p = b.block(r), c = b.block(r), j = b.block(r);
    b.entry(r, p);
    b.compute(r, p, 2);
    const BehaviorId br = b.condbr(r, p, c, j, {0.9});
    b.compute(r, c, 1);
    b.call(r, c, r, j);
    b.compute(r, j, 1);
    b.ret(r, j);
    const FuncId m = b.function("main", 8);
    const BlockId m0 = b.block(m), m1 = b.block(m), m2 = b.block(m);
    b.entry(m, m0);
    b.compute(m, m0, 1);
    b.call(m, m0, r, m1);
    b.compute(m, m1, 1);
    const BehaviorId lbr = b.condbr(m, m1, m0, m2, {0.999});
    b.ret(m, m2);
    b.entryFunc(m);
    auto w = b.finish("deep", "A",
                      workload::PhaseSchedule({{0, 1'000'000}}, false),
                      300'000);
    (void)br;
    (void)lbr;

    trace::ExecutionEngine e(w.program, w);
    const auto stats = e.run(300'000);
    EXPECT_GT(stats.dynCalls, 2'000u);
    // calls and returns must balance over a long run (within the live
    // stack depth at the budget cut).
    // (The engine would crash or hang on unbalanced frames long before.)
    SUCCEED();
}

TEST(Edge, RecursivePackagePreservesStream)
{
    // Packaged self-recursion (one self-inline + re-entry via the
    // patched call) replays the original logical stream.
    workload::ProgramBuilder b("rec2", 9);
    const FuncId r = b.function("r", 12);
    const BlockId p = b.block(r), c = b.block(r), k = b.block(r),
                  j = b.block(r), e = b.block(r);
    b.entry(r, p);
    b.compute(r, p, 2);
    b.fallthrough(r, p, c);
    b.compute(r, c, 3);
    const BehaviorId br = b.condbr(r, c, k, j, {0.55});
    b.compute(r, k, 2);
    b.call(r, k, r, j);
    b.compute(r, j, 2);
    b.fallthrough(r, j, e);
    b.compute(r, e, 1);
    b.ret(r, e);
    const FuncId m = b.function("main", 8);
    const BlockId m0 = b.block(m), m1 = b.block(m), m2 = b.block(m);
    b.entry(m, m0);
    b.compute(m, m0, 1);
    b.call(m, m0, r, m1);
    b.compute(m, m1, 1);
    const BehaviorId lbr = b.condbr(m, m1, m0, m2, {0.995});
    b.ret(m, m2);
    b.entryFunc(m);
    auto w = b.finish("rec2", "A",
                      workload::PhaseSchedule({{0, 1'000'000}}, false),
                      200'000);

    hsd::HotSpotRecord rec;
    for (auto [id, exec, taken] :
         {std::tuple{br, 400u, 220u}, std::tuple{lbr, 200u, 199u}}) {
        hsd::HotBranch hb;
        hb.behavior = id;
        hb.exec = exec;
        hb.taken = taken;
        rec.branches.push_back(hb);
    }
    const auto region =
        region::identifyRegion(w.program, rec, region::RegionConfig{});
    const auto pp = package::buildPackages(w.program, {region});
    ASSERT_TRUE(verify(pp.program).empty());

    trace::ExecutionEngine e1(w.program, w);
    const auto s1 = e1.run(w.maxDynInsts);
    trace::ExecutionEngine e2(pp.program, w);
    const auto s2 = e2.run(w.maxDynInsts * 2, s1.dynBranches);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
}

// ---------------------------------------------------------- stage misuse

TEST(Edge, OptimizerIsIdempotent)
{
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    VacuumPacker packer(t.w, VpConfig::variant(true, true));
    VpResult r = packer.run(); // construct() already optimized once
    const std::size_t insts = r.packaged.program.numInsts();
    const auto again = opt::optimizePackages(r.packaged.program);
    // A second run finds nothing new to sink or merge.
    EXPECT_EQ(again.instsSunk, 0u);
    EXPECT_EQ(again.blocksMerged, 0u);
    EXPECT_EQ(r.packaged.program.numInsts(), insts);
    EXPECT_TRUE(verify(r.packaged.program).empty());
}

TEST(Edge, CoverageAndSpeedupOnUnpackagedProgram)
{
    test::TinyWorkload t = test::makeTiny(42, 150'000);
    const auto cov = measureCoverage(t.w, t.w.program);
    EXPECT_EQ(cov.instsInPackages, 0u);
    const auto sp = measureSpeedup(t.w, t.w.program);
    EXPECT_NEAR(sp.speedup(), 1.0, 1e-3); // identical program (the
    // branch-bounded second run may stop a few instructions earlier)
}

TEST(Edge, FilterOnEmptyInput)
{
    EXPECT_TRUE(hsd::filterRedundant({}).empty());
}

TEST(Edge, CategorizeWithNoRecords)
{
    test::TinyWorkload t = test::makeTiny(42, 60'000);
    const Categorization cat = categorizeBranches(t.w, {});
    EXPECT_NEAR(cat.of(BranchCategory::NotDetected), 1.0, 1e-9);
}

} // namespace
