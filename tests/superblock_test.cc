/**
 * @file
 * Equivalence tests for superblock (trace) execution: an engine running
 * trace plans must produce the byte-identical sink stream, stats, and
 * suspended-walk footprint (referencesFunction) of an engine stepping
 * block plans — over full roster runs, mid-trace quantum suspensions,
 * program mutations landing while a walk is suspended inside a trace,
 * and side exits throughout a biased chain. Traces may only ever change
 * speed, never results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::trace;

bool
sameEvent(const RetiredInst &a, const RetiredInst &b)
{
    return a.inst == b.inst && a.pc == b.pc && a.nextPc == b.nextPc &&
           a.block == b.block && a.branchTaken == b.branchTaken &&
           a.memAddr == b.memAddr && a.retAddr == b.retAddr &&
           a.inPackage == b.inPackage;
}

void
expectSameStream(const std::vector<RetiredInst> &a,
                 const std::vector<RetiredInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(sameEvent(a[i], b[i])) << "event " << i << " differs";
}

void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.dynBranches, b.dynBranches);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.dynCalls, b.dynCalls);
    EXPECT_EQ(a.instsInPackages, b.instsInPackages);
    EXPECT_EQ(a.hitBudget, b.hitBudget);
}

class BatchRecorder : public InstSink
{
  public:
    void onRetire(const RetiredInst &ri) override { events.push_back(ri); }

    void
    onRetireBatch(std::span<const RetiredInst> batch) override
    {
        events.insert(events.end(), batch.begin(), batch.end());
        ++batches;
    }

    std::vector<RetiredInst> events;
    std::uint64_t batches = 0;
};

class MaskedRecorder : public BatchRecorder
{
  public:
    explicit MaskedRecorder(unsigned mask) : mask_(mask) {}
    unsigned eventMask() const override { return mask_; }

  private:
    unsigned mask_;
};

std::vector<RetiredInst>
filterByMask(const std::vector<RetiredInst> &events, unsigned mask)
{
    std::vector<RetiredInst> out;
    for (const RetiredInst &ri : events) {
        if (mask & eventClassOf(ri.inst->op))
            out.push_back(ri);
    }
    return out;
}

/** Eager trace formation: no warm-up gate, no demotion — maximum trace
 *  exposure for the equivalence checks. */
TraceConfig
eagerTraces()
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.minHeadEntries = 0;
    cfg.probationEntries = 0;
    return cfg;
}

TraceConfig
noTraces()
{
    TraceConfig cfg;
    cfg.enabled = false;
    return cfg;
}

TEST(Superblock, RosterStreamsMatchBlockPath)
{
    // Every Table 1 roster row, budget-capped for test runtime: the
    // trace engine's full/branch-only/memory-only streams must equal the
    // block engine's, and so must the aggregate stats.
    for (workload::Workload &w : workload::makeAllWorkloads()) {
        const std::uint64_t budget =
            std::min<std::uint64_t>(w.maxDynInsts, 120'000);

        ExecutionEngine traced(w.program, w);
        traced.setTraceConfig(eagerTraces());
        BatchRecorder tAll;
        MaskedRecorder tBranches(kEventBranches);
        MaskedRecorder tMemory(kEventMemory);
        traced.addSink(&tAll);
        traced.addSink(&tBranches);
        traced.addSink(&tMemory);
        const RunStats tStats = traced.run(budget);

        ExecutionEngine blocks(w.program, w);
        blocks.setTraceConfig(noTraces());
        BatchRecorder bAll;
        blocks.addSink(&bAll);
        const RunStats bStats = blocks.run(budget);

        ASSERT_FALSE(bAll.events.empty()) << w.name;
        expectSameStream(tAll.events, bAll.events);
        expectSameStream(tBranches.events,
                         filterByMask(bAll.events, kEventBranches));
        expectSameStream(tMemory.events,
                         filterByMask(bAll.events, kEventMemory));
        expectSameStats(tStats, bStats);

        // The block engine never forms traces; the trace engine must
        // actually engage on these loopy workloads to make the streams
        // above a meaningful A/B.
        EXPECT_EQ(blocks.traceStats().entries, 0u) << w.name;
        EXPECT_GT(traced.traceStats().entries, 0u) << w.name;

        // Multi-block spans mean strictly fewer sink calls for the same
        // event count.
        EXPECT_LT(tAll.batches, bAll.batches) << w.name;
    }
}

TEST(Superblock, SideExitsThroughoutBiasedChain)
{
    // A 0.75-biased diamond inside a latch loop whose trip count dwarfs
    // the budget (so the run length is the budget, not the loop exit):
    // the trace follows the biased arm and unrolls the loop, and the
    // oracle's 25%-per-iteration diamond breaks force side exits at
    // every trace position over the run. The stream must match the
    // block path regardless of where the walk leaves the trace. Both
    // engines share the program so RetiredInst::inst pointers compare.
    test::DiamondLoop d = test::makeDiamondLoop({0.75}, {500'000.0}, 150'000);

    ExecutionEngine traced(d.w.program, d.w);
    traced.setTraceConfig(eagerTraces());
    BatchRecorder tRec;
    traced.addSink(&tRec);
    const RunStats tStats = traced.run(d.w.maxDynInsts);

    ExecutionEngine blocks(d.w.program, d.w);
    blocks.setTraceConfig(noTraces());
    BatchRecorder bRec;
    blocks.addSink(&bRec);
    const RunStats bStats = blocks.run(d.w.maxDynInsts);

    expectSameStream(tRec.events, bRec.events);
    expectSameStats(tStats, bStats);

    const TraceStats &ts = traced.traceStats();
    ASSERT_GT(ts.entries, 100u);
    // Side exits are real: the average executed segment is strictly
    // shorter than a full unrolled plan, yet longer than one block.
    EXPECT_GT(ts.blocks, ts.entries);
    EXPECT_LT(ts.blocks, ts.entries * 64);
}

TEST(Superblock, QuantumSuspensionInsideTraces)
{
    // Odd quanta land budget suspensions inside trace segments (the
    // diamond's blocks are 3-4 instructions; a 7-instruction quantum
    // suspends mid-block and at block boundaries alike). Resumed
    // segments must splice into the identical stream, including the
    // oracle's memory-address draw order.
    test::TinyWorkload tiny = test::makeTiny();
    const std::uint64_t budget = 40'000;

    ExecutionEngine wholeEng(tiny.w.program, tiny.w);
    wholeEng.setTraceConfig(eagerTraces());
    BatchRecorder wholeRec;
    wholeEng.addSink(&wholeRec);
    const RunStats wholeStats = wholeEng.run(budget);

    ExecutionEngine stepEng(tiny.w.program, tiny.w);
    stepEng.setTraceConfig(eagerTraces());
    BatchRecorder stepRec;
    stepEng.addSink(&stepRec);
    while (!stepEng.finished() && stepEng.stats().dynInsts < budget)
        stepEng.resume(
            std::min<std::uint64_t>(7, budget - stepEng.stats().dynInsts));

    expectSameStream(stepRec.events, wholeRec.events);
    expectSameStats(stepEng.stats(), wholeStats);
    EXPECT_GT(stepEng.traceStats().entries, 0u);
}

TEST(Superblock, MutationWhileSuspendedMidTrace)
{
    // Install-shaped mutations landing between quanta while the walk is
    // suspended inside a trace: the stale tail must be abandoned after
    // the current block, and the stream must stay byte-identical to a
    // block engine driven through the same quanta and the same
    // mutations. Both engines share one program so the mutations hit
    // them at exactly the same walk position.
    test::DiamondLoop d = test::makeDiamondLoop({1.0}, {50.0}, 1'000'000);
    ir::Program &prog = d.w.program;

    ExecutionEngine traced(prog, d.w);
    traced.setTraceConfig(eagerTraces());
    BatchRecorder tRec;
    traced.addSink(&tRec);

    ExecutionEngine blocks(prog, d.w);
    blocks.setTraceConfig(noTraces());
    BatchRecorder bRec;
    blocks.addSink(&bRec);

    auto step = [&](std::uint64_t quantum) {
        traced.resume(quantum);
        blocks.resume(quantum);
    };

    // Warm up into steady trace execution, suspending mid-segment.
    for (int i = 0; i < 40; ++i)
        step(7);
    ASSERT_GT(traced.traceStats().entries, 0u);

    // Mutation shape 1: content change + relayout (grow the hot taken
    // arm). Plans and traces for the old epoch must not retire a single
    // stale instruction beyond the block the walk is inside.
    {
        Instruction extra;
        extra.op = Opcode::IAlu;
        BasicBlock &bb = prog.func(d.f).block(d.b2);
        bb.insts.insert(bb.insts.begin(), extra);
        prog.layout();
    }
    for (int i = 0; i < 40; ++i)
        step(7);

    // Mutation shape 2: a bare epoch bump with unchanged content (the
    // unpatch/retarget shape) — must invalidate cached traces without
    // perturbing the stream.
    prog.noteMutation();
    for (int i = 0; i < 40; ++i)
        step(7);

    expectSameStream(tRec.events, bRec.events);
    expectSameStats(traced.stats(), blocks.stats());
}

TEST(Superblock, ReferencesFunctionParityAcrossSpannedFunctions)
{
    // Wire an intra-package-link-shaped CFG: main's loop body jumps into
    // a helper function and the helper jumps straight back, so a single
    // trace spans both functions. A suspended trace walk must report the
    // exact referencesFunction() footprint of the block walk at every
    // quantum boundary — the runtime's tombstone gate keys off it.
    workload::ProgramBuilder pb("xfunc", 23);
    const FuncId aux = pb.function("aux", 8);
    const BlockId x0 = pb.block(aux), x1 = pb.block(aux);
    pb.entry(aux, x0);
    pb.compute(aux, x0, 2);
    pb.fallthrough(aux, x0, x1);
    pb.compute(aux, x1, 3);
    pb.jump(aux, x1, x1); // placeholder; retargeted to main below

    const FuncId mainF = pb.function("xmain", 8);
    const BlockId m0 = pb.block(mainF), m1 = pb.block(mainF);
    const BlockId m2 = pb.block(mainF), m3 = pb.block(mainF);
    const BlockId epi = pb.block(mainF);
    pb.entry(mainF, m0);
    pb.compute(mainF, m0, 2);
    pb.fallthrough(mainF, m0, m1);
    pb.compute(mainF, m1, 3);
    pb.jump(mainF, m1, m2); // placeholder; retargeted to aux below
    pb.compute(mainF, m2, 2);
    pb.fallthrough(mainF, m2, m3);
    pb.compute(mainF, m3, 2);
    pb.condbr(mainF, m3, m1, epi, {0.98});
    pb.compute(mainF, epi, 1);
    pb.ret(mainF, epi);
    pb.entryFunc(mainF);

    workload::Workload w = pb.finish(
        "xfunc", "A", workload::PhaseSchedule({{0, 1'000'000}}, false),
        60'000);
    // Cross-function links, the package-linker shape: m1 jumps into
    // aux's entry, aux's tail jumps back to m2.
    w.program.func(mainF).block(m1).taken = BlockRef{aux, x0};
    w.program.func(aux).block(x1).taken = BlockRef{mainF, m2};
    w.program.layout();

    ExecutionEngine traced(w.program, w);
    traced.setTraceConfig(eagerTraces());
    BatchRecorder tRec;
    traced.addSink(&tRec);

    ExecutionEngine blocks(w.program, w);
    blocks.setTraceConfig(noTraces());
    BatchRecorder bRec;
    blocks.addSink(&bRec);

    bool sawAuxReferenced = false;
    while (!traced.finished()) {
        traced.resume(7);
        blocks.resume(7);
        for (FuncId f = 0; f < w.program.numFunctions(); ++f)
            ASSERT_EQ(traced.referencesFunction(f),
                      blocks.referencesFunction(f))
                << "func " << f << " at inst " << traced.stats().dynInsts;
        if (traced.referencesFunction(aux))
            sawAuxReferenced = true;
    }
    EXPECT_TRUE(blocks.finished());
    expectSameStream(tRec.events, bRec.events);

    // The walk really was suspended inside the helper at some boundary,
    // and the trace engine really spanned functions inside one trace.
    EXPECT_TRUE(sawAuxReferenced);
    EXPECT_GT(traced.traceStats().entries, 0u);
    EXPECT_GT(traced.traceStats().blocks, 4 * traced.traceStats().entries);
}

TEST(Superblock, RunTwiceReusesPlansIdentically)
{
    // run() twice on one engine: resetWalk() keeps the plan and trace
    // tables (allocations and formed traces survive), and the second
    // run's stream is byte-identical to the first because the oracle
    // clock is the only walk input and run() does not rewind it — but
    // reset() does, and must then reproduce the first run exactly.
    test::TinyWorkload t = test::makeTiny();
    const std::uint64_t budget = 30'000;

    ExecutionEngine engine(t.w.program, t.w);
    engine.setTraceConfig(eagerTraces());
    BatchRecorder rec;
    engine.addSink(&rec);
    engine.run(budget);
    const std::uint64_t builds_after_first = engine.traceStats().builds;
    const std::size_t first_run_events = rec.events.size();

    engine.reset();
    engine.run(budget);

    ASSERT_EQ(rec.events.size(), 2 * first_run_events);
    const std::vector<RetiredInst> first(rec.events.begin(),
                                         rec.events.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 first_run_events));
    const std::vector<RetiredInst> second(rec.events.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  first_run_events),
                                          rec.events.end());
    expectSameStream(second, first);
    // The phase schedule repeated identically, so every trace the second
    // run needed already existed: no re-formation churn.
    EXPECT_EQ(engine.traceStats().builds, 0u)
        << "first run formed " << builds_after_first;
}

TEST(Superblock, TotalSimulatedInstsFlushedPerRun)
{
    // The de-contended process-wide retire counter: per-engine tallies
    // must be fully folded in by the time run() returns, for the trace
    // path and the block path alike.
    test::TinyWorkload t = test::makeTiny();

    ExecutionEngine traced(t.w.program, t.w);
    traced.setTraceConfig(eagerTraces());
    const std::uint64_t before = totalSimulatedInsts();
    const RunStats stats = traced.run(25'000);
    EXPECT_EQ(totalSimulatedInsts() - before, stats.dynInsts);

    ExecutionEngine blocks(t.w.program, t.w);
    blocks.setTraceConfig(noTraces());
    const std::uint64_t mid = totalSimulatedInsts();
    const RunStats bStats = blocks.run(25'000);
    EXPECT_EQ(totalSimulatedInsts() - mid, bStats.dynInsts);
    expectSameStats(stats, bStats);
}

} // namespace
