/**
 * @file
 * Optimizer tests: profile-weight propagation, relayout (chaining, branch
 * flips, jump removal), straight-line merging, and the EPIC list
 * scheduler (dependences, resources, terminator pinning) — plus the
 * semantic-preservation property of the whole pass stack.
 */

#include <gtest/gtest.h>

#include "ir/verify.hh"
#include "opt/optimizer.hh"
#include "package/packager.hh"
#include "region/identify.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::opt;

// ----------------------------------------------------------------- weights

TEST(Weights, DiamondSplitsByProbability)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.7}, {1.0});
    Function &fn = d.w.program.func(d.f);
    // Stamp the profile hint the way pruning would.
    fn.block(d.b1).terminator()->profProb = 0.7;
    fn.block(d.b4).terminator()->profProb = 0.0; // no looping

    const FlowWeights w = computeWeights(fn, {d.b0});
    EXPECT_NEAR(w.block[d.b1], 1.0, 1e-9);
    EXPECT_NEAR(w.taken[d.b1], 0.7, 1e-9);
    EXPECT_NEAR(w.fall[d.b1], 0.3, 1e-9);
    EXPECT_NEAR(w.block[d.b2], 0.7, 1e-9);
    EXPECT_NEAR(w.block[d.b3], 0.3, 1e-9);
    EXPECT_NEAR(w.block[d.b4], 1.0, 1e-9);
    EXPECT_NEAR(w.block[d.b5], 1.0, 1e-9);
}

TEST(Weights, LoopAmplifiesGeometrically)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.5}, {10.0});
    Function &fn = d.w.program.func(d.f);
    fn.block(d.b1).terminator()->profProb = 0.5;
    fn.block(d.b4).terminator()->profProb = 0.9; // mean 10 trips

    const FlowWeights w = computeWeights(fn, {d.b0}, 2000, 1e-9);
    // Header weight converges to 1/(1-0.9) = 10.
    EXPECT_NEAR(w.block[d.b1], 10.0, 0.05);
    EXPECT_NEAR(w.block[d.b5], 1.0, 0.01); // exactly one exit
}

TEST(Weights, UnknownBranchDefaultsToEvenSplit)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.9}, {1.0});
    Function &fn = d.w.program.func(d.f);
    fn.block(d.b4).terminator()->profProb = 0.0;
    // b1's profProb stays -1 (unknown).
    const FlowWeights w = computeWeights(fn, {d.b0});
    EXPECT_NEAR(w.block[d.b2], 0.5, 1e-9);
    EXPECT_NEAR(w.block[d.b3], 0.5, 1e-9);
}

TEST(Weights, MultipleEntriesInjectIndependently)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.5}, {1.0});
    Function &fn = d.w.program.func(d.f);
    fn.block(d.b1).terminator()->profProb = 0.5;
    fn.block(d.b4).terminator()->profProb = 0.0;
    const FlowWeights w = computeWeights(fn, {d.b0, d.b2});
    EXPECT_NEAR(w.block[d.b4], 1.0 + 1.0, 1e-9); // both entries reach b4
}

// ------------------------------------------------------------------ layout

TEST(Layout, HotTakenSuccessorBecomesFallthrough)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.9}, {1.0});
    Function &fn = d.w.program.func(d.f);
    fn.block(d.b1).terminator()->profProb = 0.9; // taken side (b2) hot
    fn.block(d.b4).terminator()->profProb = 0.0;

    const FlowWeights w = computeWeights(fn, {d.b0});
    const LayoutStats ls = relayoutFunction(fn, w);
    EXPECT_GE(ls.flippedBranches, 1u);
    // b1 now falls through to b2 and its sense is inverted.
    EXPECT_EQ(fn.block(d.b1).fall, (BlockRef{d.f, d.b2}));
    EXPECT_EQ(fn.block(d.b1).taken, (BlockRef{d.f, d.b3}));
    EXPECT_TRUE(fn.block(d.b1).terminator()->invertSense);
    EXPECT_NEAR(fn.block(d.b1).terminator()->profProb, 0.1, 1e-9);
    // In layout order, b2 directly follows b1.
    const auto &order = fn.layout();
    const auto pos = [&](BlockId b) {
        return std::find(order.begin(), order.end(), b) - order.begin();
    };
    EXPECT_EQ(pos(d.b2), pos(d.b1) + 1);
}

TEST(Layout, JumpToChainSuccessorIsRemoved)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.9}, {1.0});
    Function &fn = d.w.program.func(d.f);
    fn.block(d.b1).terminator()->profProb = 0.9;
    fn.block(d.b4).terminator()->profProb = 0.0;
    const std::size_t before = fn.numInsts();

    const FlowWeights w = computeWeights(fn, {d.b0});
    const LayoutStats ls = relayoutFunction(fn, w);
    // b2 ends in "jump b4"; when b4 is laid out right after b2 the jump
    // disappears.
    EXPECT_GE(ls.jumpsRemoved, 1u);
    EXPECT_EQ(fn.numInsts(), before - ls.jumpsRemoved);
    EXPECT_FALSE(fn.block(d.b2).terminator());
    EXPECT_EQ(fn.block(d.b2).fall, (BlockRef{d.f, d.b4}));
}

TEST(Layout, FlippedExecutionIsEquivalent)
{
    // Run before/after relayout: logical behavior identical.
    test::DiamondLoop d1 = test::makeDiamondLoop({0.9}, {20.0}, 50'000);
    test::DiamondLoop d2 = test::makeDiamondLoop({0.9}, {20.0}, 50'000);
    Function &fn = d2.w.program.func(d2.f);
    fn.block(d2.b1).terminator()->profProb = 0.9;
    fn.block(d2.b4).terminator()->profProb = 0.95;
    const FlowWeights w = computeWeights(fn, {d2.b0});
    relayoutFunction(fn, w);
    d2.w.program.layout();
    ASSERT_TRUE(verify(d2.w.program).empty());

    trace::ExecutionEngine e1(d1.w.program, d1.w);
    trace::ExecutionEngine e2(d2.w.program, d2.w);
    const auto s1 = e1.run(50'000);
    const auto s2 = e2.run(50'000);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    // Jump removal may shave unconditional jumps; branch behavior aside,
    // the run must visit the same number of conditional branches and
    // produce a *lower or equal* taken-transfer count.
    EXPECT_LE(s2.takenBranches, s1.takenBranches);
}

// ------------------------------------------------------------------- merge

TEST(Merge, FoldsSingleEntryFallthroughChains)
{
    // b0 -> b1 (single pred, fallthrough, no terminator on b0).
    Program prog("m");
    const FuncId f = prog.addFunction("f");
    Function &fn = prog.func(f);
    fn.setRegCount(4);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock();
    const BlockId b2 = fn.addBlock();
    Instruction i;
    i.op = Opcode::IAlu;
    i.dsts = {0};
    i.srcs = {1, 2};
    fn.block(b0).insts.push_back(i);
    fn.block(b0).fall = BlockRef{f, b1};
    fn.block(b1).insts.push_back(i);
    fn.block(b1).fall = BlockRef{f, b2};
    Instruction r;
    r.op = Opcode::Ret;
    fn.block(b2).insts.push_back(r);

    std::vector<bool> ext(fn.numBlocks(), false);
    const std::size_t merged = mergeStraightline(fn, ext);
    // Iterative merging folds the whole chain, ret included.
    EXPECT_EQ(merged, 2u);
    EXPECT_EQ(fn.block(b0).insts.size(), 3u); // both IAlus + the ret
    EXPECT_TRUE(fn.block(b0).endsInRet());
    EXPECT_TRUE(fn.block(b1).insts.empty());  // dead husk
    EXPECT_TRUE(fn.block(b2).insts.empty());  // dead husk
    EXPECT_TRUE(verify(prog).empty());
}

TEST(Merge, RespectsExternalReferences)
{
    Program prog("m");
    const FuncId f = prog.addFunction("f");
    Function &fn = prog.func(f);
    fn.setRegCount(4);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock();
    Instruction i;
    i.op = Opcode::IAlu;
    i.dsts = {0};
    i.srcs = {1, 1};
    fn.block(b0).insts.push_back(i);
    fn.block(b0).fall = BlockRef{f, b1};
    Instruction r;
    r.op = Opcode::Ret;
    fn.block(b1).insts.push_back(r);

    std::vector<bool> ext(fn.numBlocks(), false);
    ext[b1] = true; // e.g. a link target
    EXPECT_EQ(mergeStraightline(fn, ext), 0u);
}

TEST(Merge, NeverFoldsMultiPredBlocks)
{
    test::DiamondLoop d = test::makeDiamondLoop();
    Function &fn = d.w.program.func(d.f);
    std::vector<bool> ext(fn.numBlocks(), false);
    // b4 has two preds (b2, b3): b3 must not swallow it.
    mergeStraightline(fn, ext);
    EXPECT_FALSE(fn.block(d.b4).insts.empty());
}

// --------------------------------------------------------------- scheduler

BasicBlock
makeBlock(std::vector<Instruction> insts)
{
    BasicBlock bb;
    bb.id = 0;
    bb.insts = std::move(insts);
    return bb;
}

Instruction
op(Opcode o, std::vector<RegId> d, std::vector<RegId> s)
{
    Instruction i;
    i.op = o;
    i.dsts = std::move(d);
    i.srcs = std::move(s);
    return i;
}

TEST(Schedule, RawDependenceKeepsOrder)
{
    const BasicBlock bb = makeBlock({
        op(Opcode::IAlu, {1}, {0, 0}),
        op(Opcode::IAlu, {2}, {1, 1}), // RAW on r1
    });
    const auto deps = buildDeps(bb, sim::MachineConfig{});
    bool raw = false;
    for (const auto &e : deps)
        raw |= (e.from == 0 && e.to == 1 && e.kind == DepKind::Raw);
    EXPECT_TRUE(raw);

    const auto sched = scheduleBlock(bb, sim::MachineConfig{});
    EXPECT_LT(sched.cycle[0], sched.cycle[1]);
}

TEST(Schedule, IndependentOpsShareACycle)
{
    const BasicBlock bb = makeBlock({
        op(Opcode::IAlu, {1}, {0, 0}),
        op(Opcode::IAlu, {2}, {0, 0}),
        op(Opcode::IAlu, {3}, {0, 0}),
    });
    const auto sched = scheduleBlock(bb, sim::MachineConfig{});
    EXPECT_EQ(sched.length, 1u);
}

TEST(Schedule, FuLimitsForceExtraCycles)
{
    // 6 independent integer ops vs 5 IALU units -> 2 cycles.
    std::vector<Instruction> insts;
    for (RegId r = 1; r <= 6; ++r)
        insts.push_back(op(Opcode::IAlu, {r}, {0, 0}));
    const auto sched = scheduleBlock(makeBlock(std::move(insts)),
                                     sim::MachineConfig{});
    EXPECT_EQ(sched.length, 2u);
}

TEST(Schedule, IssueWidthCapsParallelism)
{
    // 9 independent ops across unit types vs width 8 -> 2 cycles.
    std::vector<Instruction> insts;
    for (RegId r = 1; r <= 5; ++r)
        insts.push_back(op(Opcode::IAlu, {r}, {0, 0}));
    for (RegId r = 6; r <= 8; ++r)
        insts.push_back(op(Opcode::FAlu, {r}, {0, 0}));
    insts.push_back(op(Opcode::Load, {9}, {0}));
    const auto sched = scheduleBlock(makeBlock(std::move(insts)),
                                     sim::MachineConfig{});
    EXPECT_EQ(sched.length, 2u);
}

TEST(Schedule, TerminatorStaysLast)
{
    std::vector<Instruction> insts;
    for (RegId r = 1; r <= 4; ++r)
        insts.push_back(op(Opcode::IAlu, {r}, {0, 0}));
    Instruction br = op(Opcode::CondBr, {}, {1});
    br.behavior = 99;
    insts.push_back(br);
    insts.push_back(op(Opcode::Nop, {}, {}));
    // (verifier would reject this; pure scheduler-level exercise)
    BasicBlock bb = makeBlock(std::move(insts));
    bb.insts.pop_back(); // keep terminator last after all
    const auto sched = scheduleBlock(bb, sim::MachineConfig{});
    EXPECT_EQ(sched.order.back(), bb.insts.size() - 1);
}

TEST(Schedule, StoreLoadOrderingPreserved)
{
    const BasicBlock bb = makeBlock({
        op(Opcode::Store, {}, {0, 1}),
        op(Opcode::Load, {2}, {0}),
    });
    const auto sched = scheduleBlock(bb, sim::MachineConfig{});
    // Load may not hoist above the store.
    EXPECT_EQ(sched.order.front(), 0u);
}

TEST(Schedule, LoadsMayReorderFreely)
{
    const BasicBlock bb = makeBlock({
        op(Opcode::Load, {1}, {0}),
        op(Opcode::Load, {2}, {0}),
    });
    const auto sched = scheduleBlock(bb, sim::MachineConfig{});
    EXPECT_EQ(sched.length, 1u); // both in one cycle: no dependence
}

TEST(Schedule, CriticalPathGetsPriority)
{
    // A long FMul chain plus filler: chain head must issue in cycle 0.
    std::vector<Instruction> insts;
    insts.push_back(op(Opcode::FMul, {1}, {0, 0}));  // chain head
    insts.push_back(op(Opcode::FMul, {2}, {1, 1}));  // chain
    insts.push_back(op(Opcode::IAlu, {3}, {0, 0}));  // filler
    const auto sched = scheduleBlock(makeBlock(std::move(insts)),
                                     sim::MachineConfig{});
    EXPECT_EQ(sched.cycle[0], 0u);
    const sim::MachineConfig mc;
    EXPECT_GE(sched.cycle[1], mc.latFMul);
}

TEST(Schedule, FunctionLevelReorderingPreservesExecution)
{
    test::TinyWorkload t1 = test::makeTiny(42, 60'000);
    test::TinyWorkload t2 = test::makeTiny(42, 60'000);
    for (auto &fn : t2.w.program.functions())
        scheduleFunction(fn, sim::MachineConfig{});
    t2.w.program.layout();
    ASSERT_TRUE(verify(t2.w.program).empty());

    trace::ExecutionEngine e1(t1.w.program, t1.w);
    trace::ExecutionEngine e2(t2.w.program, t2.w);
    const auto s1 = e1.run(60'000);
    const auto s2 = e2.run(60'000);
    EXPECT_EQ(s1.dynInsts, s2.dynInsts);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
}

// ----------------------------------------------------------- whole pass set

TEST(Optimizer, FullStackPreservesLogicalStreamOnPackages)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = t.dispatchBr;
    hb.exec = 400;
    hb.taken = 380;
    rec.branches.push_back(hb);
    const auto region =
        region::identifyRegion(t.w.program, rec, region::RegionConfig{});
    package::PackagedProgram pp =
        package::buildPackages(t.w.program, {region});

    trace::ExecutionEngine before(pp.program, t.w);
    const auto sb = before.run(t.w.maxDynInsts);

    const OptStats stats = optimizePackages(pp.program);
    EXPECT_GE(stats.functionsOptimized, 1u);

    // Equal logical work: bound the post-optimization run by the same
    // branch count (optimization shrinks the instruction stream).
    trace::ExecutionEngine after(pp.program, t.w);
    const auto sa = after.run(t.w.maxDynInsts * 2, sb.dynBranches);
    EXPECT_EQ(sb.dynBranches, sa.dynBranches);
    // Sinking/merging/jump removal can only shrink the hot path.
    EXPECT_LE(sa.dynInsts, sb.dynInsts);
    EXPECT_NEAR(sa.packageCoverage(), sb.packageCoverage(), 0.05);
}

TEST(Optimizer, OnlyTouchesPackageFunctions)
{
    test::TinyWorkload t = test::makeTiny();
    const std::size_t alpha_insts = t.w.program.func(t.alpha).numInsts();
    optimizePackages(t.w.program); // no packages anywhere
    EXPECT_EQ(t.w.program.func(t.alpha).numInsts(), alpha_insts);
}

} // namespace
