/**
 * @file
 * Region-identification tests: the paper's Figure 3 walk-through
 * (functions A and B with a 4-entry BBB record), each Figure 4 inference
 * statement in isolation, heuristic growth, and the no-inference mode of
 * Section 5.1.
 */

#include <gtest/gtest.h>

#include "hsd/record.hh"
#include "region/identify.hh"
#include "tests/helpers.hh"
#include "workload/builder.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::region;
using vp::test::Figure3;
using vp::test::makeFigure3;
using vp::test::figure3Record;

class Figure3Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fig_ = makeFigure3();
        rec_ = figure3Record(fig_);
    }

    Temp
    tempOf(FuncId f, BlockId b, const Region &r) const
    {
        return r.blockTemp({f, b});
    }

    Figure3 fig_;
    hsd::HotSpotRecord rec_;
};

TEST_F(Figure3Test, SeedMarksRecordedBranchBlocksHot)
{
    Region r(fig_.w.program);
    RegionConfig cfg;
    seedFromRecord(r, fig_.w.program, rec_, cfg);
    EXPECT_EQ(tempOf(fig_.A, fig_.a2, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.A, fig_.a4, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.A, fig_.a9, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.B, fig_.b4, r), Temp::Hot);
    // Everything else starts Unknown.
    EXPECT_EQ(tempOf(fig_.A, fig_.a3, r), Temp::Unknown);
    EXPECT_EQ(tempOf(fig_.B, fig_.b2, r), Temp::Unknown);
}

TEST_F(Figure3Test, SeedAssignsWeightsAndProbabilities)
{
    Region r(fig_.w.program);
    RegionConfig cfg;
    seedFromRecord(r, fig_.w.program, rec_, cfg);
    EXPECT_DOUBLE_EQ(r.blockWeight({fig_.A, fig_.a2}), 400.0);
    EXPECT_DOUBLE_EQ(r.takenProb({fig_.A, fig_.a2}), 0.01);
    EXPECT_DOUBLE_EQ(r.takenProb({fig_.A, fig_.a4}), 0.5);
}

TEST_F(Figure3Test, SeedArcTemperatures)
{
    Region r(fig_.w.program);
    RegionConfig cfg;
    seedFromRecord(r, fig_.w.program, rec_, cfg);
    // A2: taken (to A7) carries 1% -> Cold; fall (to A3) 99% -> Hot.
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a2}, ArcDir::Taken), Temp::Cold);
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a2}, ArcDir::Fall), Temp::Hot);
    // A4: both directions 50% -> Hot.
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a4}, ArcDir::Taken), Temp::Hot);
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a4}, ArcDir::Fall), Temp::Hot);
    // A9: fall to A10 carries 4 executions (1%) -> Cold.
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a9}, ArcDir::Fall), Temp::Cold);
    EXPECT_EQ(r.arcTemp({fig_.A, fig_.a9}, ArcDir::Taken), Temp::Hot);
}

TEST_F(Figure3Test, InferenceReproducesPaperWalkthrough)
{
    const Region r =
        identifyRegion(fig_.w.program, rec_, RegionConfig{});

    // Paper: "Since the flow from A2 to A7 is Cold, block A7 must be
    // Cold (Statement 3)."
    EXPECT_EQ(tempOf(fig_.A, fig_.a7, r), Temp::Cold);
    // Paper: "The flow from A9 to A10 is similarly identified as Cold."
    EXPECT_EQ(tempOf(fig_.A, fig_.a10, r), Temp::Cold);
    // Paper: "the flow to A3 is Hot. The temperature of this flow is
    // propagated to block A3 by Statement 4."
    EXPECT_EQ(tempOf(fig_.A, fig_.a3, r), Temp::Hot);
    // Paper: "The fact that B4 is Hot implies that B2 and B6 are Hot
    // (Statements 7 and 4)."
    EXPECT_EQ(tempOf(fig_.B, fig_.b2, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.B, fig_.b6, r), Temp::Hot);
    // The hot region spans the unbiased diamond and the loop body.
    EXPECT_EQ(tempOf(fig_.A, fig_.a4, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.A, fig_.a5, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.A, fig_.a6, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.A, fig_.a8, r), Temp::Hot);
    // The callee's prologue heats through the hot call (Statement 9).
    EXPECT_EQ(tempOf(fig_.B, fig_.b1, r), Temp::Hot);
    // The region spans both functions, as in Figure 1(b).
    const auto funcs = r.hotFuncs();
    EXPECT_EQ(funcs.size(), 2u);
}

TEST_F(Figure3Test, WithoutInferenceBranchBlocksStayUnknown)
{
    RegionConfig cfg;
    cfg.inference = false;
    cfg.maxGrowthBlocks = 0; // isolate inference from heuristic growth
    const Region r = identifyRegion(fig_.w.program, rec_, cfg);
    // B2 contains a branch missing from the BBB: without inference its
    // temperature may not be inferred (the record is trusted as
    // complete).
    EXPECT_NE(tempOf(fig_.B, fig_.b2, r), Temp::Hot);
    // Branch-free blocks still receive temperatures.
    EXPECT_EQ(tempOf(fig_.A, fig_.a3, r), Temp::Hot);
    EXPECT_EQ(tempOf(fig_.B, fig_.b1, r), Temp::Hot);
}

TEST_F(Figure3Test, GrowthCanRescueWhatInferenceMayNot)
{
    // With inference off but growth on (the paper's actual w/o-inference
    // configuration keeps "the remainder of the formation algorithm in
    // full"), B2 is recovered by backward entry expansion: B4 is a
    // selection entry and B2 bridges it to hot B1.
    RegionConfig cfg;
    cfg.inference = false;
    const Region r = identifyRegion(fig_.w.program, rec_, cfg);
    EXPECT_EQ(tempOf(fig_.B, fig_.b2, r), Temp::Hot);
}

TEST_F(Figure3Test, RegionQueriesAreConsistent)
{
    const Region r =
        identifyRegion(fig_.w.program, rec_, RegionConfig{});
    const auto hot = r.hotBlocks();
    EXPECT_EQ(hot.size(), r.numHotBlocks());
    for (const auto &ref : hot)
        EXPECT_TRUE(r.isHot(ref));
}

// ----------------------------------------------- individual inference rules

/** Two blocks joined by one arc, built by hand for rule micro-tests. */
struct MicroCfg
{
    workload::Workload w;
    FuncId f = 0;
};

TEST(InferenceRules, Statement3AllInArcsCold)
{
    // c1 --cold--> x ; x must become Cold.
    workload::ProgramBuilder b("s3", 1);
    const FuncId f = b.function("f", 8);
    const BlockId c1 = b.block(f), x = b.block(f), y = b.block(f);
    b.entry(f, c1);
    b.compute(f, c1, 1);
    const BehaviorId br = b.condbr(f, c1, x, y, {0.0});
    b.compute(f, x, 1);
    b.ret(f, x);
    b.compute(f, y, 1);
    b.ret(f, y);
    auto w = b.finish("s3", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = br;
    hb.exec = 400;
    hb.taken = 0; // never taken: arc to x Cold, arc to y Hot
    rec.branches.push_back(hb);

    const Region r = identifyRegion(w.program, rec, RegionConfig{});
    EXPECT_EQ(r.blockTemp({f, x}), Temp::Cold);  // Statement 3
    EXPECT_EQ(r.blockTemp({f, y}), Temp::Hot);   // Statement 4
}

TEST(InferenceRules, Statement6ColdBlockFreezesItsArcs)
{
    // cold block's outgoing arc becomes Cold, making its successor Cold
    // too (cascading 3 -> 6 -> 3).
    workload::ProgramBuilder b("s6", 1);
    const FuncId f = b.function("f", 8);
    const BlockId c1 = b.block(f), x = b.block(f), x2 = b.block(f),
                  y = b.block(f);
    b.entry(f, c1);
    b.compute(f, c1, 1);
    const BehaviorId br = b.condbr(f, c1, x, y, {0.0});
    b.compute(f, x, 1);
    b.fallthrough(f, x, x2);
    b.compute(f, x2, 1);
    b.ret(f, x2);
    b.compute(f, y, 1);
    b.ret(f, y);
    auto w = b.finish("s6", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = br;
    hb.exec = 400;
    hb.taken = 0;
    rec.branches.push_back(hb);

    const Region r = identifyRegion(w.program, rec, RegionConfig{});
    EXPECT_EQ(r.blockTemp({f, x}), Temp::Cold);
    EXPECT_EQ(r.arcTemp({f, x}, ArcDir::Fall), Temp::Cold); // Statement 6
    EXPECT_EQ(r.blockTemp({f, x2}), Temp::Cold);            // cascaded
}

TEST(InferenceRules, Statement7SolvesTheOnlyUnknownArc)
{
    // h (hot, in record) <- via fall from u (unknown, branch-free
    // pred)... handled by growth; the pure Statement 7 case is a hot
    // block whose other in-arc is Cold:
    //   c --cold--> h,  u --unknown--> h  =>  u->h becomes Hot.
    workload::ProgramBuilder b("s7", 1);
    const FuncId f = b.function("f", 8);
    const BlockId c1 = b.block(f), u = b.block(f), h = b.block(f),
                  z = b.block(f);
    b.entry(f, c1);
    b.compute(f, c1, 1);
    // c1's branch: taken->h with 0 weight (cold), fall->u.
    const BehaviorId br1 = b.condbr(f, c1, h, u, {0.0});
    b.compute(f, u, 1);
    b.jump(f, u, h);
    b.compute(f, h, 1);
    const BehaviorId br2 = b.condbr(f, h, z, z, {0.5});
    b.compute(f, z, 1);
    b.ret(f, z);
    auto w = b.finish("s7", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    hsd::HotBranch hb1;
    hb1.behavior = br1;
    hb1.exec = 400;
    hb1.taken = 0;
    rec.branches.push_back(hb1);
    hsd::HotBranch hb2;
    hb2.behavior = br2;
    hb2.exec = 400;
    hb2.taken = 200;
    rec.branches.push_back(hb2);

    const Region r = identifyRegion(w.program, rec, RegionConfig{});
    // h is hot with in-arcs {c1->h Cold, u->h Unknown}: Statement 7 heats
    // u->h, and Statement 4 then heats u.
    EXPECT_EQ(r.arcTemp({f, u}, ArcDir::Taken), Temp::Hot);
    EXPECT_EQ(r.blockTemp({f, u}), Temp::Hot);
}

TEST(InferenceRules, Statement9HeatsCalleePrologue)
{
    test::TinyWorkload t = test::makeTiny();
    // Record: only loop's dispatch branch + alpha's first diamond.
    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = t.dispatchBr;
    hb.exec = 400;
    hb.taken = 380; // alpha path hot
    rec.branches.push_back(hb);

    const Region r = identifyRegion(t.w.program, rec, RegionConfig{});
    // The call block to alpha is hot (taken arc), so alpha's prologue
    // must be inferred Hot even though no alpha branch was recorded.
    const auto &alpha = t.w.program.func(t.alpha);
    EXPECT_EQ(r.blockTemp({t.alpha, alpha.entry()}), Temp::Hot);
}

// ------------------------------------------------------------------ growth

TEST(Growth, AdoptsUnknownArcBetweenHotBlocks)
{
    // Two recorded-hot blocks connected by an arc the HSD knows nothing
    // about: the arc joins the region.
    workload::ProgramBuilder b("g1", 1);
    const FuncId f = b.function("f", 8);
    const BlockId h1 = b.block(f), h2 = b.block(f), z = b.block(f);
    b.entry(f, h1);
    b.compute(f, h1, 1);
    const BehaviorId br1 = b.condbr(f, h1, h2, h2, {0.5});
    b.compute(f, h2, 1);
    const BehaviorId br2 = b.condbr(f, h2, z, z, {0.5});
    b.compute(f, z, 1);
    b.ret(f, z);
    auto w = b.finish("g1", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    for (BehaviorId id : {br1, br2}) {
        hsd::HotBranch hb;
        hb.behavior = id;
        hb.exec = 100;
        hb.taken = 50;
        rec.branches.push_back(hb);
    }
    const Region r = identifyRegion(w.program, rec, RegionConfig{});
    EXPECT_EQ(r.blockTemp({f, h1}), Temp::Hot);
    EXPECT_EQ(r.blockTemp({f, h2}), Temp::Hot);
}

TEST(Growth, BackwardExpansionMergesEntries)
{
    // A structure where Figure 4 inference genuinely cannot classify u
    // (every rule is blocked by a second Unknown), but one backward
    // growth step from the selection entry h2 reconnects it to hot w:
    //
    //   h1 (rec, taken 99%) -> w              (w hot via Statement 4)
    //   w:  unrecorded branch -> {u, v}       (two Unknown outs: S7 mute)
    //   u:  unrecorded branch -> {h2, cex}
    //   v:  jump -> h2                        (second Unknown into h2)
    //   h2 (rec, unbiased)  -> {z, z}
    workload::ProgramBuilder b("g2", 1);
    const FuncId f = b.function("f", 8);
    const BlockId h1 = b.block(f), w_ = b.block(f), u = b.block(f),
                  v = b.block(f), h2 = b.block(f), z = b.block(f),
                  cex = b.block(f);
    b.entry(f, h1);
    b.compute(f, h1, 1);
    const BehaviorId br1 = b.condbr(f, h1, w_, cex, {0.99});
    b.compute(f, w_, 1);
    b.condbr(f, w_, u, v, {0.5}); // NOT in record
    b.compute(f, u, 1);
    b.condbr(f, u, h2, cex, {0.9}); // NOT in record
    b.compute(f, v, 1);
    b.jump(f, v, h2);
    b.compute(f, h2, 1);
    const BehaviorId br2 = b.condbr(f, h2, z, z, {0.7});
    b.compute(f, z, 1);
    b.ret(f, z);
    b.compute(f, cex, 1);
    b.ret(f, cex);
    auto w = b.finish("g2", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    for (BehaviorId id : {br1, br2}) {
        hsd::HotBranch hb;
        hb.behavior = id;
        hb.exec = 400;
        hb.taken = (id == br1) ? 396 : 200;
        rec.branches.push_back(hb);
    }

    RegionConfig cfg;
    cfg.maxGrowthBlocks = 1;
    const Region r = identifyRegion(w.program, rec, cfg);
    // h2 is a selection entry; growth walks back through u (one block)
    // and reconnects to hot w, adopting u.
    EXPECT_EQ(r.blockTemp({f, u}), Temp::Hot);

    // With growth bound 0, u stays out.
    RegionConfig cfg0;
    cfg0.maxGrowthBlocks = 0;
    const Region r0 = identifyRegion(w.program, rec, cfg0);
    EXPECT_NE(r0.blockTemp({f, u}), Temp::Hot);
}

TEST(Growth, NeverCrossesColdArcsOrBlocks)
{
    // entry-block expansion must not adopt a predecessor whose arc is
    // Cold.
    workload::ProgramBuilder b("g3", 1);
    const FuncId f = b.function("f", 8);
    const BlockId h1 = b.block(f), u = b.block(f), h2 = b.block(f),
                  z = b.block(f);
    b.entry(f, h1);
    b.compute(f, h1, 1);
    // h1 -> u is COLD (taken weight 0), h1 -> z hot.
    const BehaviorId br1 = b.condbr(f, h1, u, z, {0.0});
    b.compute(f, u, 1);
    b.jump(f, u, h2);
    b.compute(f, z, 1);
    b.ret(f, z);
    b.compute(f, h2, 1);
    const BehaviorId br2 = b.condbr(f, h2, h2, z, {0.7});
    auto w = b.finish("g3", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    hsd::HotBranch hb1;
    hb1.behavior = br1;
    hb1.exec = 400;
    hb1.taken = 0;
    rec.branches.push_back(hb1);
    hsd::HotBranch hb2;
    hb2.behavior = br2;
    hb2.exec = 300;
    hb2.taken = 210;
    rec.branches.push_back(hb2);

    const Region r = identifyRegion(w.program, rec, RegionConfig{});
    // u's only in-arc is Cold: u must not be grown into the region (it
    // is in fact inferred Cold by Statement 3).
    EXPECT_NE(r.blockTemp({f, u}), Temp::Hot);
}

// ------------------------------------------------------------- arc seeding

TEST(ArcSeeding, WeightThresholdMakesLowFractionArcHot)
{
    // A 10%-fraction direction is below the 25% rule but its absolute
    // weight exceeds the execution threshold -> Hot (Section 3.2.1).
    workload::ProgramBuilder b("a1", 1);
    const FuncId f = b.function("f", 8);
    const BlockId h = b.block(f), x = b.block(f), y = b.block(f);
    b.entry(f, h);
    b.compute(f, h, 1);
    const BehaviorId br = b.condbr(f, h, x, y, {0.1});
    b.compute(f, x, 1);
    b.ret(f, x);
    b.compute(f, y, 1);
    b.ret(f, y);
    auto w = b.finish("a1", "A", workload::PhaseSchedule({{0, 100}}, false),
                      100);

    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = br;
    hb.exec = 500;
    hb.taken = 50; // 10% but weight 50 > 16
    rec.branches.push_back(hb);

    Region r(w.program);
    RegionConfig cfg;
    seedFromRecord(r, w.program, rec, cfg);
    EXPECT_EQ(r.arcTemp({f, h}, ArcDir::Taken), Temp::Hot);

    // With a tiny branch the same fraction is Cold.
    hsd::HotSpotRecord rec2;
    hsd::HotBranch hb2;
    hb2.behavior = br;
    hb2.exec = 60;
    hb2.taken = 6; // 10%, weight 6 < 16
    rec2.branches.push_back(hb2);
    Region r2(w.program);
    seedFromRecord(r2, w.program, rec2, cfg);
    EXPECT_EQ(r2.arcTemp({f, h}, ArcDir::Taken), Temp::Cold);
}

TEST(ArcSeeding, StaleRecordEntriesAreTolerated)
{
    test::TinyWorkload t = test::makeTiny();
    hsd::HotSpotRecord rec;
    hsd::HotBranch hb;
    hb.behavior = 0xdeadbeef; // no such branch
    hb.exec = 100;
    hb.taken = 50;
    rec.branches.push_back(hb);
    const Region r = identifyRegion(t.w.program, rec, RegionConfig{});
    EXPECT_EQ(r.numHotBlocks(), 0u);
}

TEST(BranchIndexTest, MapsEveryCondBr)
{
    test::TinyWorkload t = test::makeTiny();
    const auto index = branchIndex(t.w.program);
    std::size_t branches = 0;
    for (const auto &fn : t.w.program.functions()) {
        for (const auto &bb : fn.blocks()) {
            if (bb.endsInCondBr()) {
                ++branches;
                auto it = index.find(bb.terminator()->behavior);
                ASSERT_NE(it, index.end());
                EXPECT_EQ(it->second, (BlockRef{fn.id(), bb.id}));
            }
        }
    }
    EXPECT_EQ(index.size(), branches);
}

} // namespace
