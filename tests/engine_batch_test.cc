/**
 * @file
 * Equivalence tests for the engine's batched, mask-filtered sink
 * dispatch: a sink consuming whole-block batches must observe the exact
 * event sequence a scalar sink does, for full runs, for quantum-stepped
 * runs with mid-block budget suspensions, and across a structural
 * mutation that invalidates the cached block retire plans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::trace;

bool
sameEvent(const RetiredInst &a, const RetiredInst &b)
{
    return a.inst == b.inst && a.pc == b.pc && a.nextPc == b.nextPc &&
           a.block == b.block && a.branchTaken == b.branchTaken &&
           a.memAddr == b.memAddr && a.retAddr == b.retAddr &&
           a.inPackage == b.inPackage;
}

void
expectSameStream(const std::vector<RetiredInst> &a,
                 const std::vector<RetiredInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(sameEvent(a[i], b[i])) << "event " << i << " differs";
}

void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.dynBranches, b.dynBranches);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.dynCalls, b.dynCalls);
    EXPECT_EQ(a.instsInPackages, b.instsInPackages);
    EXPECT_EQ(a.hitBudget, b.hitBudget);
}

/** Scalar-path recorder: relies on the default onRetireBatch loop. */
class ScalarRecorder : public InstSink
{
  public:
    void onRetire(const RetiredInst &ri) override { events.push_back(ri); }
    std::vector<RetiredInst> events;
};

/** Batch-path recorder: consumes spans directly. */
class BatchRecorder : public InstSink
{
  public:
    void onRetire(const RetiredInst &ri) override { events.push_back(ri); }

    void
    onRetireBatch(std::span<const RetiredInst> batch) override
    {
        events.insert(events.end(), batch.begin(), batch.end());
        ++batches;
    }

    std::vector<RetiredInst> events;
    std::uint64_t batches = 0;
};

/** Batch recorder restricted to one event class. */
class MaskedRecorder : public BatchRecorder
{
  public:
    explicit MaskedRecorder(unsigned mask) : mask_(mask) {}
    unsigned eventMask() const override { return mask_; }

  private:
    unsigned mask_;
};

std::vector<RetiredInst>
filterByMask(const std::vector<RetiredInst> &events, unsigned mask)
{
    std::vector<RetiredInst> out;
    for (const RetiredInst &ri : events) {
        if (mask & eventClassOf(ri.inst->op))
            out.push_back(ri);
    }
    return out;
}

TEST(EventMask, OpcodeClasses)
{
    EXPECT_EQ(eventClassOf(Opcode::CondBr), kEventBranches);
    EXPECT_EQ(eventClassOf(Opcode::Load), kEventMemory);
    EXPECT_EQ(eventClassOf(Opcode::Store), kEventMemory);
    EXPECT_EQ(eventClassOf(Opcode::IAlu), kEventOther);
    EXPECT_EQ(eventClassOf(Opcode::Jump), kEventOther);
    EXPECT_EQ(eventClassOf(Opcode::Call), kEventOther);
    EXPECT_EQ(eventClassOf(Opcode::Ret), kEventOther);
    EXPECT_EQ(kEventAll, kEventBranches | kEventMemory | kEventOther);
}

TEST(BatchDispatch, MatchesScalarOverFullRoster)
{
    // Every Table 1 roster row, budget-capped for test runtime. The four
    // sinks ride one engine, so all dispatch paths (full batch, scalar
    // fallback, branch fast path, generic gather) see the same walk.
    for (workload::Workload &w : workload::makeAllWorkloads()) {
        const std::uint64_t budget =
            std::min<std::uint64_t>(w.maxDynInsts, 120'000);

        ExecutionEngine engine(w.program, w);
        ScalarRecorder scalar;
        BatchRecorder batch;
        MaskedRecorder branches(kEventBranches);
        MaskedRecorder memory(kEventMemory);
        engine.addSink(&scalar);
        engine.addSink(&batch);
        engine.addSink(&branches);
        engine.addSink(&memory);
        const RunStats stats = engine.run(budget);

        ASSERT_FALSE(scalar.events.empty()) << w.name;
        expectSameStream(batch.events, scalar.events);
        expectSameStream(branches.events,
                         filterByMask(scalar.events, kEventBranches));
        expectSameStream(memory.events,
                         filterByMask(scalar.events, kEventMemory));

        // Batching is real: far fewer virtual calls than events.
        EXPECT_LT(batch.batches, batch.events.size()) << w.name;

        // Masked sinks only ever saw their class.
        EXPECT_EQ(stats.dynBranches, branches.events.size()) << w.name;
        for (const RetiredInst &ri : branches.events)
            ASSERT_EQ(ri.inst->op, Opcode::CondBr);
        for (const RetiredInst &ri : memory.events)
            ASSERT_TRUE(ri.inst->op == Opcode::Load ||
                        ri.inst->op == Opcode::Store);

        // A sinkless engine produces identical aggregate stats.
        ExecutionEngine bare(w.program, w);
        expectSameStats(bare.run(budget), stats);
    }
}

TEST(BatchDispatch, QuantumSteppingMatchesSingleRunStream)
{
    // Odd quantum sizes force budget suspensions mid-block; the resumed
    // spans must splice into the identical event stream, including the
    // oracle's memory-address draw order.
    test::TinyWorkload a = test::makeTiny();
    const std::uint64_t budget = 40'000;

    ExecutionEngine whole(a.w.program, a.w);
    BatchRecorder wholeRec;
    MaskedRecorder wholeBranches(kEventBranches);
    whole.addSink(&wholeRec);
    whole.addSink(&wholeBranches);
    const RunStats wholeStats = whole.run(budget);

    ExecutionEngine stepped(a.w.program, a.w);
    BatchRecorder stepRec;
    MaskedRecorder stepBranches(kEventBranches);
    stepped.addSink(&stepRec);
    stepped.addSink(&stepBranches);
    while (!stepped.finished() && stepped.stats().dynInsts < budget)
        stepped.resume(std::min<std::uint64_t>(
            13, budget - stepped.stats().dynInsts));

    expectSameStream(stepRec.events, wholeRec.events);
    expectSameStream(stepBranches.events, wholeBranches.events);
    expectSameStats(stepped.stats(), wholeStats);
    // Suspensions split blocks, so stepping dispatches strictly more
    // batches for the same events.
    EXPECT_GT(stepRec.batches, wholeRec.batches);
}

TEST(BatchDispatch, EpochBumpInvalidatesPlansMidRun)
{
    // Install-shaped mutation between quanta: grow a hot block and
    // relayout (Program::layout() bumps the mutation epoch). The next
    // entry of that block must retire from a rebuilt plan — new
    // instruction pointers, new addresses — not the stale cache.
    test::DiamondLoop d =
        test::makeDiamondLoop({1.0}, {50.0}, 1'000'000);
    ir::Program &prog = d.w.program;
    const BlockRef hot{d.f, d.b2}; // taken arm, prob 1.0 -> revisited

    ExecutionEngine engine(prog, d.w);
    BatchRecorder rec;
    engine.addSink(&rec);
    engine.resume(200);
    ASSERT_FALSE(engine.finished());
    const std::size_t before = rec.events.size();
    const std::uint64_t epoch_before = prog.mutationEpoch();

    // The mutation: a fresh compute instruction at the front of b2.
    Instruction extra;
    extra.op = Opcode::IAlu;
    BasicBlock &bb = prog.func(d.f).block(d.b2);
    const std::size_t grown = bb.insts.size() + 1;
    bb.insts.insert(bb.insts.begin(), extra);
    prog.layout();
    EXPECT_GT(prog.mutationEpoch(), epoch_before);

    engine.resume(2'000);

    // Find the first post-mutation entry of the hot block and check the
    // whole visit against the mutated program.
    const BasicBlock &cur = prog.func(d.f).block(d.b2);
    std::size_t i = before;
    while (i < rec.events.size() &&
           !(rec.events[i].block == hot && rec.events[i].pc == cur.addr))
        ++i;
    ASSERT_LT(i + grown, rec.events.size()) << "hot block never re-entered";
    for (std::size_t k = 0; k < grown; ++k) {
        const RetiredInst &ri = rec.events[i + k];
        EXPECT_EQ(ri.block, hot);
        EXPECT_EQ(ri.inst, &cur.insts[k]);
        EXPECT_EQ(ri.pc, cur.addr + k * kInstBytes);
    }
}

TEST(Program, NoteMutationBumpsEpoch)
{
    ir::Program p("epoch");
    const std::uint64_t e0 = p.mutationEpoch();
    p.noteMutation();
    EXPECT_EQ(p.mutationEpoch(), e0 + 1);
    p.layout();
    EXPECT_EQ(p.mutationEpoch(), e0 + 2);
}

} // namespace
