/**
 * @file
 * Tests for the online repackaging runtime: live patching and deopt
 * restore the original control flow exactly, controller results are
 * byte-identical for every background-worker count, and a recurring
 * phase is served from the package cache instead of being rebuilt.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hsd/filter.hh"
#include "hsd/record.hh"
#include "ir/verify.hh"
#include "runtime/bundle.hh"
#include "runtime/controller.hh"
#include "runtime/package_cache.hh"
#include "runtime/patcher.hh"
#include "runtime/stats.hh"
#include "support/fault.hh"
#include "trace/engine.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::runtime;

/** Offline-detect one phase of @p w and synthesize its bundle. */
PackageBundle
firstBundle(const workload::Workload &w, const VpConfig &cfg)
{
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    EXPECT_FALSE(r.records.empty());
    for (const hsd::HotSpotRecord &rec : r.records) {
        PackageBundle b =
            synthesizeBundle(w.program, canonicalizeRecord(rec), cfg);
        if (!b.empty())
            return b;
    }
    return {};
}

// ------------------------------------------------------------- LivePatcher

TEST(LivePatcher, DeoptRestoresOriginalControlFlow)
{
    workload::Workload w = workload::makeGzip("A");
    const VpConfig cfg = VpConfig::variant(true, true);
    const PackageBundle bundle = firstBundle(w, cfg);
    ASSERT_FALSE(bundle.empty());

    ir::Program live = w.program;
    LivePatcher patcher(live, w.program);

    const InstalledBundle ib = patcher.install(bundle);
    ir::verifyOrDie(live, "after install");
    EXPECT_GT(ib.launchPoints, 0u);
    EXPECT_FALSE(ib.funcs.empty());
    EXPECT_GT(live.numFunctions(), w.program.numFunctions());

    // Some original arc must now divert into the package copies.
    bool diverted = false;
    for (ir::FuncId f = 0; f < w.program.numFunctions() && !diverted; ++f) {
        const ir::Function &lf = live.func(f);
        const ir::Function &pf = w.program.func(f);
        for (ir::BlockId b = 0; b < pf.numBlocks(); ++b) {
            const ir::BasicBlock &lb = lf.block(b);
            const ir::BasicBlock &pb = pf.block(b);
            if (lb.taken != pb.taken || lb.fall != pb.fall ||
                lb.callee != pb.callee) {
                diverted = true;
                break;
            }
        }
    }
    EXPECT_TRUE(diverted);

    // Deopt: unpatch the launch arcs and tombstone the package husks.
    patcher.deopt(ib);
    ir::verifyOrDie(live, "after deopt");

    // Every original arc is restored bit-for-bit...
    for (ir::FuncId f = 0; f < w.program.numFunctions(); ++f) {
        const ir::Function &lf = live.func(f);
        const ir::Function &pf = w.program.func(f);
        ASSERT_EQ(lf.numBlocks(), pf.numBlocks());
        for (ir::BlockId b = 0; b < pf.numBlocks(); ++b) {
            const ir::BasicBlock &lb = lf.block(b);
            const ir::BasicBlock &pb = pf.block(b);
            EXPECT_EQ(lb.taken, pb.taken);
            EXPECT_EQ(lb.fall, pb.fall);
            EXPECT_EQ(lb.callee, pb.callee);
        }
    }
    // ...and the package functions are empty husks.
    for (ir::FuncId f : ib.funcs)
        EXPECT_EQ(live.func(f).block(live.func(f).entry()).insts.size(), 0u);

    // Executing the deopted program is indistinguishable from the
    // original: same retire counts, nothing inside packages.
    trace::ExecutionEngine restored(live, w);
    const trace::RunStats rs = restored.run(w.maxDynInsts);
    trace::ExecutionEngine original(w.program, w);
    const trace::RunStats os = original.run(w.maxDynInsts);
    EXPECT_EQ(rs.dynInsts, os.dynInsts);
    EXPECT_EQ(rs.dynBranches, os.dynBranches);
    EXPECT_EQ(rs.takenBranches, os.takenBranches);
    EXPECT_EQ(rs.instsInPackages, 0u);
}

// ------------------------------------------------------- RuntimeController

TEST(RuntimeController, EvictionDeoptsAndKeepsRunning)
{
    workload::Workload w = workload::makeVpr("A");
    RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.cacheCapacityInsts = 64; // below one bundle: force capacity churn
    RuntimeController controller(w, cfg);
    const RuntimeStats s = controller.run();

    EXPECT_GT(s.installs, 0u);
    EXPECT_GT(s.evictions, 0u);
    ir::verifyOrDie(controller.liveProgram(), "after run");

    // Evicted bundles really were deopted: their original-arc patches
    // are restored, so replaying the workload on a fresh engine over the
    // final live program must retire exactly the original instruction
    // stream outside whatever is still resident.
    EXPECT_FALSE(s.run.hitBudget && s.run.dynInsts == 0);
}

TEST(RuntimeController, WorkerCountDoesNotChangeResults)
{
    workload::Workload w = workload::makeMcf("A");
    std::string texts[3];
    const unsigned counts[3] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
        RuntimeConfig cfg;
        cfg.vp = VpConfig::variant(true, true);
        cfg.budget = 600'000;
        cfg.workers = counts[i];
        RuntimeController controller(w, cfg);
        texts[i] = toText(controller.run(), w.label());
    }
    EXPECT_EQ(texts[0], texts[1]);
    EXPECT_EQ(texts[0], texts[2]);
}

TEST(RuntimeController, RecurringPhaseHitsCache)
{
    // mpeg2dec's I/P/B frame phases recur cyclically: after the first
    // lap every re-detection should be a cache hit (or an in-flight
    // match), not a fresh build.
    workload::Workload w = workload::makeMpeg2dec("A");
    RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    RuntimeController controller(w, cfg);
    const RuntimeStats s = controller.run();

    EXPECT_GT(s.detections, 0u);
    EXPECT_GT(s.cacheHits, 0u);
    EXPECT_LT(s.builds, s.detections);
}

// ---------------------------------------------------------- PackageCache

/** A record of @p n hot branches with behavior ids starting at @p first. */
hsd::HotSpotRecord
phaseRecord(ir::BehaviorId first, std::size_t n = 10)
{
    hsd::HotSpotRecord r;
    for (std::size_t i = 0; i < n; ++i) {
        hsd::HotBranch h;
        h.behavior = first + static_cast<ir::BehaviorId>(i);
        h.pc = 0x1000 + h.behavior * 4;
        h.exec = 100;
        h.taken = 50;
        r.branches.push_back(h);
    }
    return r;
}

TEST(PackageCache, QuarantineBackoffIsCappedExponential)
{
    PackageCache cache(0, hsd::FilterConfig{});
    const hsd::HotSpotRecord rec = phaseRecord(1);
    const std::uint64_t base = 16, cap = 1024;

    // Offense n blocks for exactly min(base << n, 1024) quanta:
    // 16, 32, ..., 512, then pinned at the cap.
    std::uint64_t q = 0;
    for (std::size_t n = 0; n < 10; ++n) {
        EXPECT_EQ(cache.quarantine(rec, q, base, cap), n + 1);
        const std::uint64_t backoff =
            std::min<std::uint64_t>(cap, base << n);
        EXPECT_TRUE(cache.quarantined(rec, q));
        EXPECT_TRUE(cache.quarantined(rec, q + backoff - 1));
        EXPECT_FALSE(cache.quarantined(rec, q + backoff));
        q += backoff; // relapse the moment the backoff expires
    }

    // Absolution erases the history; the next offense restarts the
    // schedule from the base, not from where the relapses left off.
    EXPECT_EQ(cache.absolve(rec), 1u);
    EXPECT_EQ(cache.quarantineCount(), 0u);
    EXPECT_EQ(cache.quarantine(rec, q, base, cap), 1u);
    EXPECT_TRUE(cache.quarantined(rec, q + base - 1));
    EXPECT_FALSE(cache.quarantined(rec, q + base));
}

TEST(PackageCache, QuarantineMatchesLooselyLikeTheCache)
{
    // The quarantine list uses the same sameHotSpot() predicate as cache
    // lookup, so a near-variant record of a blocked phase — one a loose
    // cache match would happily serve — is blocked too. This is what
    // makes the quarantine-before-loose-match rule airtight: there is no
    // record the cache would match that the backoff check would miss.
    PackageCache cache(0, hsd::FilterConfig{});
    const hsd::HotSpotRecord rec = phaseRecord(1);
    cache.quarantine(rec, 0, 16, 1024);

    hsd::HotSpotRecord variant = rec;
    variant.branches.pop_back(); // 10% missing: still the same hot spot
    ASSERT_TRUE(hsd::sameHotSpot(rec, variant));
    EXPECT_TRUE(cache.quarantined(variant, 0));

    const hsd::HotSpotRecord other = phaseRecord(100);
    ASSERT_FALSE(hsd::sameHotSpot(rec, other));
    EXPECT_FALSE(cache.quarantined(other, 0));
}

TEST(RuntimeController, WatchdogAbsolvesPhaseThatProvesHealthy)
{
    // A phase quarantined for a spurious gate reject must not drag that
    // history forever: once a later install of the same phase serves
    // actively past the watchdog grace period, its quarantine record is
    // erased (counted as an absolution) and the backoff restarts from
    // the base on any future offense.
    std::size_t absolutions = 0;
    for (std::uint64_t seed = 1; seed <= 4 && !absolutions; ++seed) {
        workload::Workload w = workload::makeMcf("A");
        RuntimeConfig cfg;
        cfg.vp = VpConfig::variant(true, true);
        cfg.watchdog = true;
        const Expected<fault::FaultConfig> fc =
            fault::FaultConfig::parse("verify-flip=0.5", seed);
        ASSERT_TRUE(fc.isOk());
        cfg.fault = fc.value();
        RuntimeController controller(w, cfg);
        const RuntimeStats s = controller.run();
        absolutions += s.absolutions;
        if (s.absolutions)
            EXPECT_GT(s.quarantines, 0u);
    }
    EXPECT_GT(absolutions, 0u);
}

TEST(RuntimeController, CoverageApproachesOffline)
{
    workload::Workload w = workload::makeMcf("A");
    RuntimeConfig rcfg;
    rcfg.vp = VpConfig::variant(true, true);
    RuntimeController controller(w, rcfg);
    const double online = controller.run().packageCoverage();

    VacuumPacker packer(w, VpConfig::variant(true, true));
    const VpResult r = packer.run();
    const double offline =
        measureCoverage(w, r.packaged.program).packageCoverage();

    ASSERT_GT(offline, 0.0);
    EXPECT_GE(online, 0.8 * offline);
}

} // namespace
