/**
 * @file
 * Tests for hot-spot signatures and the detection-time history filter
 * (the Section 3.1 hardware enhancement): signature similarity math,
 * FIFO history behavior, and end-to-end suppression of re-detections
 * without losing unique phases.
 */

#include <gtest/gtest.h>

#include "hsd/detector.hh"
#include "hsd/filter.hh"
#include "hsd/signature.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"

namespace
{

using namespace vp;
using namespace vp::hsd;

std::vector<HotBranch>
branchesAt(std::initializer_list<ir::Addr> pcs)
{
    std::vector<HotBranch> out;
    for (ir::Addr pc : pcs) {
        HotBranch hb;
        hb.pc = pc;
        hb.behavior = pc;
        hb.exec = 100;
        hb.taken = 50;
        out.push_back(hb);
    }
    return out;
}

TEST(Signature, IdenticalSetsAreIdentical)
{
    const auto a =
        HotSpotSignature::of(branchesAt({0x1000, 0x2000, 0x3000}));
    const auto b =
        HotSpotSignature::of(branchesAt({0x1000, 0x2000, 0x3000}));
    EXPECT_DOUBLE_EQ(a.similarity(b), 1.0);
}

TEST(Signature, OrderDoesNotMatter)
{
    const auto a =
        HotSpotSignature::of(branchesAt({0x1000, 0x2000, 0x3000}));
    const auto b =
        HotSpotSignature::of(branchesAt({0x3000, 0x1000, 0x2000}));
    EXPECT_DOUBLE_EQ(a.similarity(b), 1.0);
}

TEST(Signature, DisjointSetsAreDissimilar)
{
    std::initializer_list<ir::Addr> s1 = {0x1000, 0x1010, 0x1020, 0x1030,
                                          0x1040, 0x1050};
    std::initializer_list<ir::Addr> s2 = {0x9000, 0x9010, 0x9020, 0x9030,
                                          0x9040, 0x9050};
    const auto a = HotSpotSignature::of(branchesAt(s1), 256);
    const auto b = HotSpotSignature::of(branchesAt(s2), 256);
    EXPECT_LT(a.similarity(b), 0.3);
}

TEST(Signature, OverlappingSetsAreIntermediate)
{
    const auto a = HotSpotSignature::of(
        branchesAt({0x1000, 0x2000, 0x3000, 0x4000}), 256);
    const auto b = HotSpotSignature::of(
        branchesAt({0x1000, 0x2000, 0x3000, 0x9000}), 256);
    const double s = a.similarity(b);
    EXPECT_GT(s, 0.4);
    EXPECT_LT(s, 1.0);
}

TEST(Signature, EmptySignaturesCountAsIdentical)
{
    const HotSpotSignature a(64), b(64);
    EXPECT_DOUBLE_EQ(a.similarity(b), 1.0);
}

TEST(Signature, PopcountGrowsWithInsertions)
{
    HotSpotSignature sig(256);
    EXPECT_EQ(sig.popcount(), 0u);
    sig.insert(0x1000);
    const unsigned one = sig.popcount();
    EXPECT_GE(one, 1u);
    EXPECT_LE(one, 2u); // two hash positions, possibly colliding
    sig.insert(0x5000);
    EXPECT_GE(sig.popcount(), one);
}

TEST(SignatureHistory, RejectsRecentDuplicates)
{
    SignatureHistory hist(2, 0.7);
    const auto a =
        HotSpotSignature::of(branchesAt({0x1000, 0x2000, 0x3000}));
    EXPECT_TRUE(hist.isNovel(a));
    hist.insert(a);
    EXPECT_FALSE(hist.isNovel(a));
}

TEST(SignatureHistory, FifoEviction)
{
    SignatureHistory hist(1, 0.7);
    const auto a =
        HotSpotSignature::of(branchesAt({0x1000, 0x2000, 0x3000}));
    const auto b = HotSpotSignature::of(
        branchesAt({0x9000, 0x9100, 0x9200, 0x9300, 0x9400}));
    hist.insert(a);
    EXPECT_FALSE(hist.isNovel(a));
    hist.insert(b); // evicts a (depth 1)
    EXPECT_TRUE(hist.isNovel(a));
    EXPECT_FALSE(hist.isNovel(b));
}

TEST(SignatureHistory, DepthZeroHoldsNothing)
{
    SignatureHistory hist(0, 0.7);
    const auto a = HotSpotSignature::of(branchesAt({0x1000}));
    hist.insert(a);
    EXPECT_EQ(hist.size(), 0u);
    EXPECT_TRUE(hist.isNovel(a));
}

// ------------------------------------------------------------- end to end

TEST(DetectorHistory, SuppressesRedetectionsOfTheSamePhase)
{
    test::TinyWorkload t = test::makeTiny(42, 600'000);

    auto run = [&](unsigned depth) {
        trace::ExecutionEngine engine(t.w.program, t.w);
        HsdConfig cfg;
        cfg.historyDepth = depth;
        HotSpotDetector det(cfg, &engine.oracle());
        engine.addSink(&det);
        engine.run(600'000);
        return std::make_pair(det.records().size(),
                              det.suppressedDetections());
    };

    const auto [rec0, sup0] = run(0);
    const auto [rec2, sup2] = run(2);
    EXPECT_EQ(sup0, 0u);
    EXPECT_GT(sup2, 0u);
    EXPECT_LT(rec2, rec0);
    // Total detection activity is the same hardware event count.
    EXPECT_EQ(rec2 + sup2, rec0);
}

TEST(DetectorHistory, UniquePhasesSurviveSuppression)
{
    test::TinyWorkload t = test::makeTiny(42, 800'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    HsdConfig cfg;
    cfg.historyDepth = 2;
    // Tiny working sets: use a wider signature and a stricter
    // re-detection threshold so boundary-mixed hot spots do not shadow
    // the pure phase-1 hot spot.
    cfg.signatureBits = 512;
    cfg.signatureSimilarity = 0.85;
    HotSpotDetector det(cfg, &engine.oracle());
    engine.addSink(&det);
    engine.run(800'000);

    bool saw0 = false, saw1 = false;
    for (const auto &rec : det.records()) {
        saw0 |= (rec.truePhase == 0);
        saw1 |= (rec.truePhase == 1);
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw1);
    // And software filtering still yields the same unique set as the
    // unfiltered hardware stream would.
    const auto unique = filterRedundant(det.records());
    EXPECT_GE(unique.size(), 2u);
}

} // namespace
