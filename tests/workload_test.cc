/**
 * @file
 * Tests for the workload substrate: phase schedules, behavior models, the
 * program builder, and structural properties of all Table 1 benchmark
 * generators (parameterized over the full roster).
 */

#include <gtest/gtest.h>

#include "ir/verify.hh"
#include "workload/benchmarks.hh"
#include "workload/builder.hh"

namespace
{

using namespace vp;
using namespace vp::workload;

// ----------------------------------------------------------- PhaseSchedule

TEST(PhaseSchedule, SequentialHoldsLastPhase)
{
    PhaseSchedule s({{0, 100}, {1, 50}}, false);
    EXPECT_EQ(s.phaseAt(0), 0u);
    EXPECT_EQ(s.phaseAt(99), 0u);
    EXPECT_EQ(s.phaseAt(100), 1u);
    EXPECT_EQ(s.phaseAt(149), 1u);
    EXPECT_EQ(s.phaseAt(150), 1u);     // past the end: stays
    EXPECT_EQ(s.phaseAt(1000000), 1u);
}

TEST(PhaseSchedule, CyclicWrapsAround)
{
    PhaseSchedule s({{0, 100}, {1, 50}}, true);
    EXPECT_EQ(s.phaseAt(150), 0u); // wrapped
    EXPECT_EQ(s.phaseAt(249), 0u);
    EXPECT_EQ(s.phaseAt(250), 1u);
    EXPECT_EQ(s.periodBranches(), 150u);
}

TEST(PhaseSchedule, NumPhasesIsMaxIdPlusOne)
{
    PhaseSchedule s({{2, 10}, {0, 10}}, false);
    EXPECT_EQ(s.numPhases(), 3u);
}

TEST(PhaseSchedule, ExactBoundaries)
{
    PhaseSchedule s({{0, 1}, {1, 1}, {2, 1}}, true);
    EXPECT_EQ(s.phaseAt(0), 0u);
    EXPECT_EQ(s.phaseAt(1), 1u);
    EXPECT_EQ(s.phaseAt(2), 2u);
    EXPECT_EQ(s.phaseAt(3), 0u);
}

// ---------------------------------------------------------- BranchBehavior

TEST(BranchBehavior, ReusesLastEntryPastEnd)
{
    BranchBehavior b;
    b.probByPhase = {0.9, 0.1};
    EXPECT_DOUBLE_EQ(b.probFor(0), 0.9);
    EXPECT_DOUBLE_EQ(b.probFor(1), 0.1);
    EXPECT_DOUBLE_EQ(b.probFor(7), 0.1);
}

TEST(BranchBehavior, EmptyDefaultsToHalf)
{
    BranchBehavior b;
    EXPECT_DOUBLE_EQ(b.probFor(0), 0.5);
}

TEST(MemBehavior, StridedSweepWraps)
{
    MemBehavior m;
    m.base = 1000;
    m.stride = 8;
    m.footprint = 32; // 4 steps
    EXPECT_EQ(m.addressAt(0), 1000u);
    EXPECT_EQ(m.addressAt(1), 1008u);
    EXPECT_EQ(m.addressAt(3), 1024u);
    EXPECT_EQ(m.addressAt(4), 1000u); // wrapped
}

TEST(MemBehavior, DegenerateFootprintStaysAtBase)
{
    MemBehavior m;
    m.base = 64;
    m.stride = 8;
    m.footprint = 8;
    EXPECT_EQ(m.addressAt(0), 64u);
    EXPECT_EQ(m.addressAt(9), 64u);
}

TEST(BehaviorMap, RegistersAndLooksUp)
{
    BehaviorMap map;
    BranchBehavior bb;
    bb.probByPhase = {0.3};
    map.addBranch(7, bb);
    EXPECT_TRUE(map.hasBranch(7));
    EXPECT_FALSE(map.hasBranch(8));
    EXPECT_DOUBLE_EQ(map.branch(7).probFor(0), 0.3);
}

// ------------------------------------------------------------------ builder

TEST(ProgramBuilder, CondBrRegistersBehavior)
{
    ProgramBuilder b("t", 1);
    const auto f = b.function("f", 8);
    const auto b0 = b.block(f);
    const auto b1 = b.block(f);
    const auto b2 = b.block(f);
    b.entry(f, b0);
    const auto id = b.condbr(f, b0, b1, b2, {0.75});
    b.ret(f, b1);
    b.ret(f, b2);
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(b.behaviors().hasBranch(id));
    EXPECT_DOUBLE_EQ(b.behaviors().branch(id).probFor(0), 0.75);
}

TEST(ProgramBuilder, ComputeRegistersMemBehaviors)
{
    ProgramBuilder b("t", 1);
    const auto f = b.function("f", 8);
    const auto b0 = b.block(f);
    b.entry(f, b0);
    ComputeMix mix;
    mix.load = 1.0; // force all loads
    mix.falu = mix.fmul = mix.store = 0.0;
    b.compute(f, b0, 10, mix);
    b.ret(f, b0);
    EXPECT_EQ(b.behaviors().numMems(), 10u);
    for (const auto &inst : b.program().func(f).block(b0).insts) {
        if (inst.op == ir::Opcode::Load) {
            EXPECT_NE(inst.behavior, 0u);
        }
    }
}

TEST(ProgramBuilder, LoopBranchConvertsIters)
{
    ProgramBuilder b("t", 1);
    const auto f = b.function("f", 8);
    const auto b0 = b.block(f);
    const auto b1 = b.block(f);
    b.entry(f, b0);
    const auto id = b.loopBranch(f, b0, b1, {10.0, 2.0});
    b.ret(f, b1);
    EXPECT_DOUBLE_EQ(b.behaviors().branch(id).probFor(0), 0.9);
    EXPECT_DOUBLE_EQ(b.behaviors().branch(id).probFor(1), 0.5);
}

TEST(ProgramBuilder, FinishVerifiesAndLaysOut)
{
    ProgramBuilder b("t", 1);
    const auto f = b.function("f", 8);
    const auto b0 = b.block(f);
    b.entry(f, b0);
    b.compute(f, b0, 4);
    b.ret(f, b0);
    b.entryFunc(f);
    Workload w = b.finish("t", "A", PhaseSchedule({{0, 100}}, false), 1000);
    EXPECT_EQ(w.program.func(f).block(b0).addr, 0x1000u);
    EXPECT_EQ(w.maxDynInsts, 1000u);
}

// --------------------------------------------------- all Table 1 workloads

struct BenchCase
{
    std::string name;
    std::string input;
};

class AllBenchmarks : public ::testing::TestWithParam<BenchCase>
{
};

TEST_P(AllBenchmarks, BuildsValidProgram)
{
    const Workload w = makeWorkload(GetParam().name, GetParam().input);
    EXPECT_EQ(w.name, GetParam().name);
    EXPECT_TRUE(ir::verify(w.program).empty());
    EXPECT_GE(w.program.numFunctions(), 5u);
    EXPECT_GE(w.program.numInsts(), 500u);
    EXPECT_GT(w.maxDynInsts, 100'000u);
}

TEST_P(AllBenchmarks, EveryCondBrHasRegisteredBehavior)
{
    const Workload w = makeWorkload(GetParam().name, GetParam().input);
    for (const auto &fn : w.program.functions()) {
        for (const auto &bb : fn.blocks()) {
            if (bb.endsInCondBr()) {
                EXPECT_TRUE(
                    w.behaviors.hasBranch(bb.terminator()->behavior))
                    << fn.name() << ":B" << bb.id;
            }
        }
    }
}

TEST_P(AllBenchmarks, DeterministicConstruction)
{
    const Workload a = makeWorkload(GetParam().name, GetParam().input);
    const Workload b = makeWorkload(GetParam().name, GetParam().input);
    EXPECT_EQ(a.program.numInsts(), b.program.numInsts());
    EXPECT_EQ(a.program.numFunctions(), b.program.numFunctions());
    EXPECT_EQ(a.behaviors.numBranches(), b.behaviors.numBranches());
}

TEST_P(AllBenchmarks, HasMultiplePhasesOrLongSchedule)
{
    const Workload w = makeWorkload(GetParam().name, GetParam().input);
    EXPECT_GE(w.schedule.numPhases(), 1u);
    EXPECT_GE(w.schedule.periodBranches(), 40'000u);
}

std::vector<BenchCase>
allCases()
{
    std::vector<BenchCase> cases;
    for (const auto &spec : allBenchmarks()) {
        for (const auto &input : spec.inputs)
            cases.push_back({spec.name, input});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AllBenchmarks, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<BenchCase> &info) {
        std::string n = info.param.name + "_" + info.param.input;
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Registry, Has20Combos)
{
    // Table 3 lists 20 benchmark/input rows (li, ijpeg, perl and vortex
    // have three inputs each).
    std::size_t combos = 0;
    for (const auto &spec : allBenchmarks())
        combos += spec.inputs.size();
    EXPECT_EQ(combos, 20u);
    EXPECT_EQ(allBenchmarks().size(), 12u);
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nonexistent", "A"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Registry, ConflictFarmBranchesCollideInOneBbbSet)
{
    // The vpr placement farm promises 2048-byte branch spacing.
    const Workload w = makeVpr("A");
    std::vector<ir::Addr> pcs;
    for (const auto &fn : w.program.functions()) {
        if (fn.name().rfind("vpr_try_swap_h", 0) == 0) {
            for (const auto &bb : fn.blocks()) {
                if (bb.endsInCondBr()) {
                    // pc of the branch = block addr + 6 insts.
                    pcs.push_back(bb.addr +
                                  (bb.insts.size() - 1) * ir::kInstBytes);
                }
            }
        }
    }
    ASSERT_GE(pcs.size(), 5u);
    const auto set_of = [](ir::Addr pc) { return (pc / 4) % 512; };
    for (std::size_t i = 1; i < pcs.size(); ++i)
        EXPECT_EQ(set_of(pcs[i]), set_of(pcs[0]));
}

} // namespace
