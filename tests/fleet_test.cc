/**
 * @file
 * Fleet runtime service tests: ShardedBundleCache unit behavior
 * (namespace isolation, first-writer-wins, LRU eviction, deterministic
 * iteration), PackageCache resident-weight accounting across residency
 * flips, and FleetController end-to-end properties — per-tenant reports
 * byte-identical across thread counts, shard counts and cold/warm
 * starts, single-tenant parity with a bare RuntimeController, and
 * warm-start job savings through the persistent store.
 *
 * Fault-domain coverage: taint containment in the shared cache (evict +
 * embargo + epidemiology counters), a poisoning SynthesisCache mock
 * proving a tampered shared bundle is gate-rejected and reported rather
 * than installed, supervised tenant crashes (degraded marking, crash
 * isolation, restart convergence), BundleStore same-key writer
 * collisions, and the idempotent crash-recovery scan.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/controller.hh"
#include "fleet/serialize.hh"
#include "fleet/sharded_cache.hh"
#include "fleet/store.hh"
#include "ir/function.hh"
#include "runtime/controller.hh"
#include "runtime/package_cache.hh"
#include "runtime/synth_cache.hh"
#include "support/fault.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::fleet;

// ---------------------------------------------------------------------
// ShardedBundleCache

TEST(ShardedBundleCache, NamespacesAreIsolated)
{
    ShardedBundleCache cache(4);
    EXPECT_TRUE(cache.insert(/*ns=*/1, /*key=*/42,
                             runtime::PackageBundle{}, false, false));
    EXPECT_NE(cache.lookup(1, 42), nullptr);
    EXPECT_EQ(cache.lookup(2, 42), nullptr);
    EXPECT_EQ(cache.lookup(1, 43), nullptr);
    EXPECT_EQ(cache.size(), 1u);

    const std::vector<ShardStats> stats = cache.stats();
    std::uint64_t hits = 0, misses = 0;
    for (const ShardStats &s : stats) {
        hits += s.hits;
        misses += s.misses;
    }
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(misses, 2u);
}

TEST(ShardedBundleCache, FirstWriterWins)
{
    ShardedBundleCache cache(2);
    EXPECT_TRUE(cache.insert(7, 9, runtime::PackageBundle{}, false, false));
    const auto first = cache.lookup(7, 9);
    ASSERT_NE(first, nullptr);
    // A racing producer of the same key built an identical bundle; the
    // second insert must be a no-op, not a replacement.
    EXPECT_FALSE(
        cache.insert(7, 9, runtime::PackageBundle{}, false, false));
    EXPECT_EQ(cache.lookup(7, 9), first);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedBundleCache, KeysSpreadAcrossShards)
{
    ShardedBundleCache cache(8);
    std::vector<std::size_t> perShard(8, 0);
    for (std::uint64_t k = 0; k < 256; ++k) {
        const std::size_t s = cache.shardOf(k);
        ASSERT_LT(s, 8u);
        // shardOf is a pure function of the key.
        EXPECT_EQ(cache.shardOf(k), s);
        ++perShard[s];
    }
    for (std::size_t s = 0; s < 8; ++s)
        EXPECT_GT(perShard[s], 0u) << "shard " << s << " never chosen";
}

TEST(ShardedBundleCache, EvictsLeastRecentlyUsedAtCapacity)
{
    ShardedBundleCache cache(1, /*capacity_per_shard=*/2);
    cache.insert(1, 10, runtime::PackageBundle{}, false, false);
    cache.insert(1, 20, runtime::PackageBundle{}, false, false);
    // Touch key 10 so key 20 is the LRU victim.
    EXPECT_NE(cache.lookup(1, 10), nullptr);
    cache.insert(1, 30, runtime::PackageBundle{}, false, false);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup(1, 10), nullptr);
    EXPECT_EQ(cache.lookup(1, 20), nullptr);
    EXPECT_NE(cache.lookup(1, 30), nullptr);
    EXPECT_EQ(cache.stats()[0].evictions, 1u);
}

TEST(ShardedBundleCache, ForEachVisitsKeysInDeterministicOrder)
{
    ShardedBundleCache cache(1);
    for (const std::uint64_t k : {50u, 10u, 40u, 20u, 30u})
        cache.insert(3, k, runtime::PackageBundle{}, false, false);

    std::vector<std::uint64_t> seen;
    cache.forEach([&](std::uint64_t ns, std::uint64_t key,
                      const runtime::PackageBundle &, bool) {
        EXPECT_EQ(ns, 3u);
        seen.push_back(key);
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

TEST(ShardedBundleCache, TaintEvictsAndEmbargoes)
{
    ShardedBundleCache cache(2);
    ASSERT_TRUE(cache.insert(1, 42, runtime::PackageBundle{}, false, false));
    ASSERT_NE(cache.lookup(1, 42), nullptr);

    // Tainting a present key evicts it and leaves an embargo behind.
    cache.taint(1, 42);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.taintedCount(), 1u);
    EXPECT_EQ(cache.lookup(1, 42), nullptr);

    // The embargo outlives the eviction: re-publishing the poisoned key
    // is refused, so no later tenant can be served it.
    EXPECT_FALSE(
        cache.insert(1, 42, runtime::PackageBundle{}, false, false));
    EXPECT_EQ(cache.size(), 0u);

    // Tainting an absent key (the consumer noticed after an LRU
    // eviction) still embargoes without counting an eviction.
    cache.taint(1, 43);
    EXPECT_EQ(cache.taintedCount(), 2u);

    std::uint64_t evictions = 0, publishes = 0, contained = 0;
    for (const ShardStats &s : cache.stats()) {
        evictions += s.taintEvictions;
        publishes += s.poisonedPublishes;
        contained += s.containedTenants;
    }
    EXPECT_EQ(evictions, 1u);
    EXPECT_EQ(publishes, 1u);
    EXPECT_EQ(contained, 1u); // the post-taint lookup of key 42

    // Other keys in the namespace are untouched.
    ASSERT_TRUE(cache.insert(1, 44, runtime::PackageBundle{}, false, false));
    EXPECT_NE(cache.lookup(1, 44), nullptr);
}

// ---------------------------------------------------------------------
// PackageCache resident-weight accounting

TEST(PackageCacheWeight, TracksResidencyFlipsExactly)
{
    runtime::PackageCache cache(/*capacity_insts=*/0, hsd::FilterConfig{});
    EXPECT_EQ(cache.weight(), 0u);

    // Dormant entry: holds a bundle but no code space.
    const std::size_t a = cache.add(runtime::CacheEntry{});
    EXPECT_EQ(cache.weight(), 0u);

    runtime::InstalledBundle ib;
    ib.weight = 100;
    cache.setResident(a, ib);
    EXPECT_EQ(cache.weight(), 100u);

    // Entries added already resident (test fixtures do this) are charged
    // on entry.
    runtime::CacheEntry pre;
    pre.resident = true;
    pre.installed.weight = 50;
    const std::size_t b = cache.add(std::move(pre));
    EXPECT_EQ(cache.weight(), 150u);

    // Deopt releases the weight at the flip, not at some later rescan.
    cache.clearResident(a);
    EXPECT_EQ(cache.weight(), 50u);
    EXPECT_FALSE(cache.entry(a).resident);

    // clearResident on a dormant entry is a no-op.
    cache.clearResident(a);
    EXPECT_EQ(cache.weight(), 50u);

    // Removing a resident entry releases immediately too.
    cache.remove(b);
    EXPECT_EQ(cache.weight(), 0u);
}

// ---------------------------------------------------------------------
// FleetController end-to-end

fleet::FleetConfig
smallFleet(std::size_t tenants, std::size_t shards, unsigned threads)
{
    fleet::FleetConfig fc;
    fc.rt.vp = VpConfig::variant(true, true);
    fc.rt.workers = 1;
    fc.rt.budget = 200000;
    fc.tenants = tenants;
    fc.shards = shards;
    fc.threads = threads;
    return fc;
}

std::string
tenantReports(const FleetStats &stats)
{
    std::string out;
    for (const TenantStats &t : stats.tenants)
        out += runtime::toText(t.stats, t.label);
    return out;
}

TEST(FleetController, ReportsAreThreadCountInvariant)
{
    FleetStats one = FleetController(smallFleet(4, 4, 1)).run();
    FleetStats eight = FleetController(smallFleet(4, 4, 8)).run();
    // Full report including the fleet summary and per-shard counters:
    // distinct workloads own disjoint namespaces, so even the shared
    // counters are schedule-independent.
    EXPECT_EQ(toText(one, true), toText(eight, true));
}

TEST(FleetController, ReportsAreShardCountInvariant)
{
    FleetStats narrow = FleetController(smallFleet(4, 1, 4)).run();
    FleetStats wide = FleetController(smallFleet(4, 8, 4)).run();
    EXPECT_EQ(tenantReports(narrow), tenantReports(wide));
    EXPECT_EQ(narrow.jobsSubmitted, wide.jobsSubmitted);
    EXPECT_EQ(narrow.jobsExecuted, wide.jobsExecuted);
    EXPECT_EQ(narrow.jobsFromCache, wide.jobsFromCache);
}

TEST(FleetController, SingleTenantMatchesBareRuntimeController)
{
    const FleetConfig fc = smallFleet(1, 1, 1);
    FleetStats fleet = FleetController(fc).run();
    ASSERT_EQ(fleet.tenants.size(), 1u);

    std::vector<workload::Workload> roster = workload::makeAllWorkloads();
    runtime::RuntimeController bare(roster[0], fc.rt);
    const runtime::RuntimeStats direct = bare.run();

    EXPECT_EQ(runtime::toText(fleet.tenants[0].stats,
                              fleet.tenants[0].label),
              runtime::toText(direct, roster[0].label()));
}

TEST(FleetController, WarmStartServesJobsFromTheStore)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "fleet-warm")
            .string();
    std::filesystem::remove_all(dir);

    FleetConfig fc = smallFleet(4, 2, 2);
    fc.storeDir = dir;
    FleetStats cold = FleetController(fc).run();
    EXPECT_GT(cold.storeSaved, 0u);
    EXPECT_GT(cold.jobsExecuted, 0u);

    fc.warmStart = true;
    FleetStats warm = FleetController(fc).run();
    EXPECT_GT(warm.storeLoaded, 0u);
    EXPECT_EQ(warm.storeRejected, 0u);
    EXPECT_EQ(warm.storeCorrupt, 0u);
    EXPECT_GT(warm.jobsFromCache, cold.jobsFromCache);
    EXPECT_LT(warm.jobsExecuted, cold.jobsExecuted);
    // Nothing new to save: everything the warm run needed came back out
    // of the store.
    EXPECT_EQ(warm.storeSaved, 0u);

    // Sharing changes who computes a bundle, never what a tenant runs.
    EXPECT_EQ(tenantReports(cold), tenantReports(warm));

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Supervised tenant fault domains

TEST(FleetSupervision, OutOfRetriesTenantDegradesButFleetCompletes)
{
    FleetConfig fc = smallFleet(3, 2, 2);
    // An unconditional crash quantum survives every restart, so each
    // tenant burns its whole retry budget and degrades.
    fc.rt.crashAtQuantum = 1;
    fc.tenantRetries = 2;
    FleetStats s = FleetController(fc).run();

    EXPECT_EQ(s.degradedTenants, 3u);
    EXPECT_EQ(s.tenantCrashes, 9u);  // 3 attempts x 3 tenants
    EXPECT_EQ(s.tenantRestarts, 6u); // 2 restarts granted per tenant
    for (const TenantStats &t : s.tenants) {
        EXPECT_TRUE(t.degraded);
        EXPECT_EQ(t.crashes, 3u);
        EXPECT_EQ(t.restarts, 2u);
        // Exponential accounting backoff: 16 + 32 quanta.
        EXPECT_EQ(t.backoffQuanta, 48u);
        EXPECT_FALSE(t.lastError.empty());
        // A degraded row is zeroed, never a partial report.
        EXPECT_EQ(t.stats.quanta, 0u);
        EXPECT_EQ(t.stats.installs, 0u);
    }

    const std::string text = toText(s, true);
    EXPECT_NE(text.find("DEGRADED"), std::string::npos);
    EXPECT_NE(text.find("supervision:"), std::string::npos);
    EXPECT_NE(text.find("containment:"), std::string::npos);
    EXPECT_NE(text.find("workers:"), std::string::npos);
}

TEST(FleetSupervision, CrashIsolationAndRestartConvergence)
{
    const FleetConfig clean = smallFleet(4, 2, 2);
    FleetStats base = FleetController(clean).run();

    // Only the tenant-crash kind fires: tenants otherwise run clean, so
    // a restarted tenant's successful attempt must converge to its
    // fault-free report, and untouched tenants must not see the crash
    // at all.
    FleetConfig fc = clean;
    fc.tenantRetries = 6;
    fc.fault.rate[static_cast<std::size_t>(fault::Kind::TenantCrash)] =
        0.6;
    fc.fault.seed = 11;
    FleetStats chaos = FleetController(fc).run();

    EXPECT_GT(chaos.tenantCrashes, 0u);
    EXPECT_EQ(chaos.degradedTenants, 0u);
    ASSERT_EQ(chaos.tenants.size(), base.tenants.size());
    for (std::size_t i = 0; i < chaos.tenants.size(); ++i) {
        EXPECT_EQ(runtime::toText(chaos.tenants[i].stats,
                                  chaos.tenants[i].label),
                  runtime::toText(base.tenants[i].stats,
                                  base.tenants[i].label))
            << "tenant " << i << " diverged ("
            << chaos.tenants[i].crashes << " crashes)";
    }

    // Identical crash schedule on 8 threads: supervision is a function
    // of the tenant index, never of scheduling.
    fc.threads = 8;
    FleetStats chaos8 = FleetController(fc).run();
    EXPECT_EQ(chaos8.tenantCrashes, chaos.tenantCrashes);
    EXPECT_EQ(chaos8.tenantRestarts, chaos.tenantRestarts);
    EXPECT_EQ(tenantReports(chaos8), tenantReports(chaos));
}

// ---------------------------------------------------------------------
// Poisoned-bundle containment through the SynthesisCache hook

/** SynthesisCache mock that stores a structurally tampered copy of
 *  every bundle published to it and serves that copy back — the
 *  poisoned-shared-state scenario — recording taint() reports. */
struct PoisoningCache final : runtime::SynthesisCache
{
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const runtime::PackageBundle>>
        entries;
    std::size_t taints = 0;

    std::shared_ptr<const runtime::PackageBundle>
    lookup(const hsd::HotSpotRecord &record, unsigned tier) override
    {
        const auto it = entries.find(recordKey(record, tier));
        return it == entries.end() ? nullptr : it->second;
    }

    void
    publish(const hsd::HotSpotRecord &record, unsigned tier,
            const runtime::PackageBundle &bundle, bool) override
    {
        runtime::PackageBundle bad = bundle;
        for (const auto &pkg : bad.packaged.packages) {
            for (ir::BasicBlock &bb :
                 bad.packaged.program.func(pkg.func).blocks()) {
                if (bb.kind != ir::BlockKind::Exit && bb.taken.valid()) {
                    // Redirect a package arc into original code: valid
                    // frame, decodes fine, must fail the install gate.
                    bb.taken = ir::BlockRef{0, 0};
                    entries.emplace(
                        recordKey(record, tier),
                        std::make_shared<runtime::PackageBundle>(
                            std::move(bad)));
                    return;
                }
            }
        }
    }

    void
    taint(const hsd::HotSpotRecord &record, unsigned tier) override
    {
        ++taints;
        entries.erase(recordKey(record, tier));
    }
};

TEST(FleetContainment, TaintedSharedBundleIsRejectedAndReported)
{
    std::vector<workload::Workload> roster = workload::makeAllWorkloads();
    runtime::RuntimeConfig rt;
    rt.vp = VpConfig::variant(true, true);
    rt.workers = 1;
    rt.budget = 200000;

    PoisoningCache cache;
    {
        // First incarnation populates the mock, which keeps tampered
        // copies of everything published.
        runtime::RuntimeController first(roster[0], rt);
        first.setSynthesisCache(&cache);
        (void)first.run();
    }
    ASSERT_FALSE(cache.entries.empty());
    const std::size_t poisoned = cache.entries.size();

    // Second incarnation is served the tampered copies. Every one must
    // be thrown out by its install gate and reported back via taint();
    // the tenant falls back to local synthesis and completes.
    runtime::RuntimeController second(roster[0], rt);
    second.setSynthesisCache(&cache);
    const runtime::RuntimeStats s = second.run();

    EXPECT_GT(s.quanta, 0u);
    EXPECT_GT(cache.taints, 0u);
    EXPECT_EQ(s.sharedCacheTaints, cache.taints);
    // Nothing poisoned survives in the shared state: each served copy
    // was either tainted away or never looked up again.
    EXPECT_LE(cache.entries.size(), poisoned);
}

// ---------------------------------------------------------------------
// BundleStore: writer collisions and crash recovery

TEST(BundleStore, SameKeyWritersNeverInterleave)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::path(::testing::TempDir()) / "store-race").string();
    fs::remove_all(dir);

    // Two store handles over one directory — the two-process sharing
    // setup — plus same-process thread races within each.
    BundleStore a(dir), b(dir);
    std::vector<std::uint8_t> image(4096);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = static_cast<std::uint8_t>(i * 31 + 7);

    std::atomic<int> errors{0}, wrote{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
        writers.emplace_back([&, t] {
            BundleStore &s = (t % 2) ? b : a;
            const Expected<bool> r = s.putImage(5, 99, image);
            if (!r.isOk())
                ++errors;
            else if (r.value())
                ++wrote;
        });
    }
    for (std::thread &w : writers)
        w.join();

    EXPECT_EQ(errors.load(), 0);
    EXPECT_GE(wrote.load(), 1);
    EXPECT_EQ(a.countNamespace(5), 1u);

    // Exactly one final image with exactly the written bytes, and no
    // orphaned temps: unique O_EXCL temp names make interleaving
    // impossible and rename keeps the final file atomic.
    std::size_t finals = 0, tmps = 0;
    for (const fs::directory_entry &de :
         fs::recursive_directory_iterator(dir)) {
        if (de.path().extension() == ".tmp")
            ++tmps;
        if (de.path().extension() != ".vpb")
            continue;
        ++finals;
        std::ifstream in(de.path(), std::ios::binary);
        const std::vector<std::uint8_t> got(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(got, image);
    }
    EXPECT_EQ(finals, 1u);
    EXPECT_EQ(tmps, 0u);

    fs::remove_all(dir);
}

TEST(BundleStore, RecoveryScanQuarantinesUndecodableImagesIdempotently)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::path(::testing::TempDir()) / "store-recover").string();
    fs::remove_all(dir);
    BundleStore store(dir);

    // An undecodable image under a real key — what a torn final write
    // or bit rot leaves behind.
    const Expected<bool> put =
        store.putImage(7, 1, std::vector<std::uint8_t>{0xde, 0xad});
    ASSERT_TRUE(put.isOk());
    ASSERT_TRUE(put.value());
    // An orphaned temp from a writer that died before its rename.
    {
        std::ofstream orphan(fs::path(dir) / "0000000000000007" /
                             "00000000000000ff.1234.0.tmp");
        orphan << "partial";
    }

    const RecoveryStats r1 = store.recoverNamespace(7);
    EXPECT_EQ(r1.scanned, 1u);
    EXPECT_EQ(r1.quarantined, 1u);
    EXPECT_EQ(r1.tmpCleaned, 1u);
    EXPECT_EQ(store.countNamespace(7), 0u);
    EXPECT_EQ(store.quarantineCount(), 1u);

    // Double crash: a second scan finds a converged directory.
    const RecoveryStats r2 = store.recoverNamespace(7);
    EXPECT_EQ(r2.scanned, 0u);
    EXPECT_EQ(r2.quarantined, 0u);
    EXPECT_EQ(r2.tmpCleaned, 0u);
    EXPECT_EQ(store.quarantineCount(), 1u);

    // A relapse at the same key replaces the sidecar entry instead of
    // erroring or accumulating duplicates.
    const Expected<bool> again =
        store.putImage(7, 1, std::vector<std::uint8_t>{0x01});
    ASSERT_TRUE(again.isOk());
    const RecoveryStats r3 = store.recoverNamespace(7);
    EXPECT_EQ(r3.quarantined, 1u);
    EXPECT_EQ(store.quarantineCount(), 1u);

    fs::remove_all(dir);
}

TEST(FleetController, WarmStartQuarantinesTornStoreImages)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::path(::testing::TempDir()) / "fleet-torn").string();
    fs::remove_all(dir);

    FleetConfig fc = smallFleet(2, 2, 2);
    fc.storeDir = dir;
    FleetStats cold = FleetController(fc).run();
    ASSERT_GT(cold.storeSaved, 0u);

    // Tear one stored image down to a prefix, as a crash mid-write
    // would have before the fsync+rename ordering existed.
    for (const fs::directory_entry &de :
         fs::recursive_directory_iterator(dir)) {
        if (de.path().extension() == ".vpb") {
            fs::resize_file(de.path(), 3);
            break;
        }
    }

    fc.warmStart = true;
    FleetStats warm = FleetController(fc).run();
    // The recovery scan shields the loader: the torn image is moved to
    // the sidecar, never even counted as a decoder-level corruption.
    EXPECT_EQ(warm.storeQuarantined, 1u);
    EXPECT_EQ(warm.storeCorrupt, 0u);
    EXPECT_EQ(warm.storeRejected, 0u);
    EXPECT_EQ(warm.degradedTenants, 0u);
    // The lost bundle is simply re-synthesized and re-flushed.
    EXPECT_EQ(warm.storeSaved, 1u);
    EXPECT_EQ(tenantReports(cold), tenantReports(warm));

    fs::remove_all(dir);
}

} // namespace
