/**
 * @file
 * Fleet runtime service tests: ShardedBundleCache unit behavior
 * (namespace isolation, first-writer-wins, LRU eviction, deterministic
 * iteration), PackageCache resident-weight accounting across residency
 * flips, and FleetController end-to-end properties — per-tenant reports
 * byte-identical across thread counts, shard counts and cold/warm
 * starts, single-tenant parity with a bare RuntimeController, and
 * warm-start job savings through the persistent store.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/controller.hh"
#include "fleet/sharded_cache.hh"
#include "runtime/controller.hh"
#include "runtime/package_cache.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::fleet;

// ---------------------------------------------------------------------
// ShardedBundleCache

TEST(ShardedBundleCache, NamespacesAreIsolated)
{
    ShardedBundleCache cache(4);
    EXPECT_TRUE(cache.insert(/*ns=*/1, /*key=*/42,
                             runtime::PackageBundle{}, false, false));
    EXPECT_NE(cache.lookup(1, 42), nullptr);
    EXPECT_EQ(cache.lookup(2, 42), nullptr);
    EXPECT_EQ(cache.lookup(1, 43), nullptr);
    EXPECT_EQ(cache.size(), 1u);

    const std::vector<ShardStats> stats = cache.stats();
    std::uint64_t hits = 0, misses = 0;
    for (const ShardStats &s : stats) {
        hits += s.hits;
        misses += s.misses;
    }
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(misses, 2u);
}

TEST(ShardedBundleCache, FirstWriterWins)
{
    ShardedBundleCache cache(2);
    EXPECT_TRUE(cache.insert(7, 9, runtime::PackageBundle{}, false, false));
    const auto first = cache.lookup(7, 9);
    ASSERT_NE(first, nullptr);
    // A racing producer of the same key built an identical bundle; the
    // second insert must be a no-op, not a replacement.
    EXPECT_FALSE(
        cache.insert(7, 9, runtime::PackageBundle{}, false, false));
    EXPECT_EQ(cache.lookup(7, 9), first);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedBundleCache, KeysSpreadAcrossShards)
{
    ShardedBundleCache cache(8);
    std::vector<std::size_t> perShard(8, 0);
    for (std::uint64_t k = 0; k < 256; ++k) {
        const std::size_t s = cache.shardOf(k);
        ASSERT_LT(s, 8u);
        // shardOf is a pure function of the key.
        EXPECT_EQ(cache.shardOf(k), s);
        ++perShard[s];
    }
    for (std::size_t s = 0; s < 8; ++s)
        EXPECT_GT(perShard[s], 0u) << "shard " << s << " never chosen";
}

TEST(ShardedBundleCache, EvictsLeastRecentlyUsedAtCapacity)
{
    ShardedBundleCache cache(1, /*capacity_per_shard=*/2);
    cache.insert(1, 10, runtime::PackageBundle{}, false, false);
    cache.insert(1, 20, runtime::PackageBundle{}, false, false);
    // Touch key 10 so key 20 is the LRU victim.
    EXPECT_NE(cache.lookup(1, 10), nullptr);
    cache.insert(1, 30, runtime::PackageBundle{}, false, false);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup(1, 10), nullptr);
    EXPECT_EQ(cache.lookup(1, 20), nullptr);
    EXPECT_NE(cache.lookup(1, 30), nullptr);
    EXPECT_EQ(cache.stats()[0].evictions, 1u);
}

TEST(ShardedBundleCache, ForEachVisitsKeysInDeterministicOrder)
{
    ShardedBundleCache cache(1);
    for (const std::uint64_t k : {50u, 10u, 40u, 20u, 30u})
        cache.insert(3, k, runtime::PackageBundle{}, false, false);

    std::vector<std::uint64_t> seen;
    cache.forEach([&](std::uint64_t ns, std::uint64_t key,
                      const runtime::PackageBundle &, bool) {
        EXPECT_EQ(ns, 3u);
        seen.push_back(key);
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

// ---------------------------------------------------------------------
// PackageCache resident-weight accounting

TEST(PackageCacheWeight, TracksResidencyFlipsExactly)
{
    runtime::PackageCache cache(/*capacity_insts=*/0, hsd::FilterConfig{});
    EXPECT_EQ(cache.weight(), 0u);

    // Dormant entry: holds a bundle but no code space.
    const std::size_t a = cache.add(runtime::CacheEntry{});
    EXPECT_EQ(cache.weight(), 0u);

    runtime::InstalledBundle ib;
    ib.weight = 100;
    cache.setResident(a, ib);
    EXPECT_EQ(cache.weight(), 100u);

    // Entries added already resident (test fixtures do this) are charged
    // on entry.
    runtime::CacheEntry pre;
    pre.resident = true;
    pre.installed.weight = 50;
    const std::size_t b = cache.add(std::move(pre));
    EXPECT_EQ(cache.weight(), 150u);

    // Deopt releases the weight at the flip, not at some later rescan.
    cache.clearResident(a);
    EXPECT_EQ(cache.weight(), 50u);
    EXPECT_FALSE(cache.entry(a).resident);

    // clearResident on a dormant entry is a no-op.
    cache.clearResident(a);
    EXPECT_EQ(cache.weight(), 50u);

    // Removing a resident entry releases immediately too.
    cache.remove(b);
    EXPECT_EQ(cache.weight(), 0u);
}

// ---------------------------------------------------------------------
// FleetController end-to-end

fleet::FleetConfig
smallFleet(std::size_t tenants, std::size_t shards, unsigned threads)
{
    fleet::FleetConfig fc;
    fc.rt.vp = VpConfig::variant(true, true);
    fc.rt.workers = 1;
    fc.rt.budget = 200000;
    fc.tenants = tenants;
    fc.shards = shards;
    fc.threads = threads;
    return fc;
}

std::string
tenantReports(const FleetStats &stats)
{
    std::string out;
    for (const TenantStats &t : stats.tenants)
        out += runtime::toText(t.stats, t.label);
    return out;
}

TEST(FleetController, ReportsAreThreadCountInvariant)
{
    FleetStats one = FleetController(smallFleet(4, 4, 1)).run();
    FleetStats eight = FleetController(smallFleet(4, 4, 8)).run();
    // Full report including the fleet summary and per-shard counters:
    // distinct workloads own disjoint namespaces, so even the shared
    // counters are schedule-independent.
    EXPECT_EQ(toText(one, true), toText(eight, true));
}

TEST(FleetController, ReportsAreShardCountInvariant)
{
    FleetStats narrow = FleetController(smallFleet(4, 1, 4)).run();
    FleetStats wide = FleetController(smallFleet(4, 8, 4)).run();
    EXPECT_EQ(tenantReports(narrow), tenantReports(wide));
    EXPECT_EQ(narrow.jobsSubmitted, wide.jobsSubmitted);
    EXPECT_EQ(narrow.jobsExecuted, wide.jobsExecuted);
    EXPECT_EQ(narrow.jobsFromCache, wide.jobsFromCache);
}

TEST(FleetController, SingleTenantMatchesBareRuntimeController)
{
    const FleetConfig fc = smallFleet(1, 1, 1);
    FleetStats fleet = FleetController(fc).run();
    ASSERT_EQ(fleet.tenants.size(), 1u);

    std::vector<workload::Workload> roster = workload::makeAllWorkloads();
    runtime::RuntimeController bare(roster[0], fc.rt);
    const runtime::RuntimeStats direct = bare.run();

    EXPECT_EQ(runtime::toText(fleet.tenants[0].stats,
                              fleet.tenants[0].label),
              runtime::toText(direct, roster[0].label()));
}

TEST(FleetController, WarmStartServesJobsFromTheStore)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "fleet-warm")
            .string();
    std::filesystem::remove_all(dir);

    FleetConfig fc = smallFleet(4, 2, 2);
    fc.storeDir = dir;
    FleetStats cold = FleetController(fc).run();
    EXPECT_GT(cold.storeSaved, 0u);
    EXPECT_GT(cold.jobsExecuted, 0u);

    fc.warmStart = true;
    FleetStats warm = FleetController(fc).run();
    EXPECT_GT(warm.storeLoaded, 0u);
    EXPECT_EQ(warm.storeRejected, 0u);
    EXPECT_EQ(warm.storeCorrupt, 0u);
    EXPECT_GT(warm.jobsFromCache, cold.jobsFromCache);
    EXPECT_LT(warm.jobsExecuted, cold.jobsExecuted);
    // Nothing new to save: everything the warm run needed came back out
    // of the store.
    EXPECT_EQ(warm.storeSaved, 0u);

    // Sharing changes who computes a bundle, never what a tenant runs.
    EXPECT_EQ(tenantReports(cold), tenantReports(warm));

    std::filesystem::remove_all(dir);
}

} // namespace
