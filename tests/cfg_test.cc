/**
 * @file
 * Unit tests for CFG utilities (predecessors, back edges, reachability,
 * RPO), the call graph, and live-variable analysis.
 */

#include <gtest/gtest.h>

#include "ir/call_graph.hh"
#include "ir/cfg.hh"
#include "ir/liveness.hh"
#include "tests/helpers.hh"

namespace
{

using namespace vp;
using namespace vp::ir;

// ---------------------------------------------------------------- CFG utils

class DiamondCfg : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        d_ = test::makeDiamondLoop();
    }

    test::DiamondLoop d_;
    const Function &fn() { return d_.w.program.func(d_.f); }
};

TEST_F(DiamondCfg, Predecessors)
{
    const auto preds = predecessors(fn());
    EXPECT_TRUE(preds[d_.b0].empty());
    // b1 <- b0 (fall) and b4 (back edge)
    ASSERT_EQ(preds[d_.b1].size(), 2u);
    // b4 <- b2 and b3
    EXPECT_EQ(preds[d_.b4].size(), 2u);
    EXPECT_EQ(preds[d_.b5].size(), 1u);
}

TEST_F(DiamondCfg, BackEdgeIsLatchToHeader)
{
    const auto back = backEdges(fn());
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].first, d_.b4);
    EXPECT_EQ(back[0].second, d_.b1);
}

TEST_F(DiamondCfg, ReachabilityFromEntry)
{
    const auto reach = reachableFrom(fn(), d_.b0);
    for (BlockId b = 0; b < fn().numBlocks(); ++b)
        EXPECT_TRUE(reach[b]) << "block " << b;
}

TEST_F(DiamondCfg, ReachabilityFromArm)
{
    const auto reach = reachableFrom(fn(), d_.b2);
    EXPECT_FALSE(reach[d_.b0]);
    EXPECT_TRUE(reach[d_.b4]);
    EXPECT_TRUE(reach[d_.b1]); // via back edge
    EXPECT_TRUE(reach[d_.b5]);
}

TEST_F(DiamondCfg, ReversePostOrderStartsAtEntry)
{
    const auto order = reversePostOrder(fn());
    ASSERT_EQ(order.size(), fn().numBlocks());
    EXPECT_EQ(order.front(), d_.b0);
    // Header must precede both arms.
    auto pos = [&](BlockId b) {
        return std::find(order.begin(), order.end(), b) - order.begin();
    };
    EXPECT_LT(pos(d_.b1), pos(d_.b2));
    EXPECT_LT(pos(d_.b1), pos(d_.b3));
    EXPECT_LT(pos(d_.b4), pos(d_.b5));
}

TEST(CfgTest, IntraSuccessorsIgnoresCrossFunctionArcs)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    const FuncId g = prog.addFunction("g");
    prog.func(f).setRegCount(2);
    prog.func(g).setRegCount(2);
    const BlockId b = prog.func(f).addBlock();
    Instruction j;
    j.op = Opcode::Jump;
    prog.func(f).block(b).insts.push_back(j);
    prog.func(f).block(b).taken = BlockRef{g, 0};
    prog.func(g).addBlock();
    EXPECT_TRUE(intraSuccessors(prog.func(f), b).empty());
}

// --------------------------------------------------------------- call graph

TEST(CallGraphTest, TinyWorkloadStructure)
{
    test::TinyWorkload t = test::makeTiny();
    CallGraph cg(t.w.program);

    const auto &loop_callees = cg.callees(t.loop);
    EXPECT_EQ(loop_callees.size(), 2u);
    EXPECT_EQ(cg.callers(t.alpha), std::vector<FuncId>{t.loop});
    EXPECT_EQ(cg.callers(t.loop), std::vector<FuncId>{t.main});
    EXPECT_TRUE(cg.callers(t.main).empty());
    EXPECT_FALSE(cg.isSelfRecursive(t.loop));
}

TEST(CallGraphTest, RestrictedToSubsetOfBlocks)
{
    test::TinyWorkload t = test::makeTiny();
    // Exclude all of loop's blocks: its call sites disappear.
    CallGraph cg(t.w.program, [&](FuncId f, BlockId) { return f != t.loop; });
    EXPECT_TRUE(cg.callers(t.alpha).empty());
    EXPECT_TRUE(cg.callers(t.beta).empty());
}

TEST(CallGraphTest, SelfRecursionIsBackEdge)
{
    Program prog("p");
    const FuncId f = prog.addFunction("rec");
    Function &fn = prog.func(f);
    fn.setRegCount(4);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock();
    Instruction c;
    c.op = Opcode::Call;
    c.srcs = {0};
    fn.block(b0).insts.push_back(c);
    fn.block(b0).callee = f;
    fn.block(b0).fall = BlockRef{f, b1};
    Instruction r;
    r.op = Opcode::Ret;
    fn.block(b1).insts.push_back(r);

    CallGraph cg(prog);
    EXPECT_TRUE(cg.isSelfRecursive(f));
    EXPECT_TRUE(cg.isBackEdge(f, f));
    EXPECT_TRUE(cg.forwardCallers(f).empty());
}

TEST(CallGraphTest, MutualRecursionClassified)
{
    Program prog("p");
    const FuncId a = prog.addFunction("a");
    const FuncId b = prog.addFunction("b");
    for (FuncId f : {a, b}) {
        Function &fn = prog.func(f);
        fn.setRegCount(4);
        const BlockId b0 = fn.addBlock();
        const BlockId b1 = fn.addBlock();
        Instruction c;
        c.op = Opcode::Call;
        c.srcs = {0};
        fn.block(b0).insts.push_back(c);
        fn.block(b0).callee = (f == a) ? b : a;
        fn.block(b0).fall = BlockRef{f, b1};
        Instruction r;
        r.op = Opcode::Ret;
        fn.block(b1).insts.push_back(r);
    }
    CallGraph cg(prog);
    // Exactly one of the two arcs is a back edge.
    EXPECT_NE(cg.isBackEdge(a, b), cg.isBackEdge(b, a));
}

TEST(CallGraphTest, CallSitesEnumerated)
{
    test::TinyWorkload t = test::makeTiny();
    CallGraph cg(t.w.program);
    std::size_t to_alpha = 0;
    for (const CallSite &cs : cg.callSites()) {
        if (cs.callee == t.alpha) {
            EXPECT_EQ(cs.caller, t.loop);
            ++to_alpha;
        }
    }
    EXPECT_EQ(to_alpha, 1u);
}

// ----------------------------------------------------------------- liveness

TEST(LivenessTest, StraightLineUseDef)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    Function &fn = prog.func(f);
    fn.setRegCount(4);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock();
    // b0: r0 = r1 + r2 ; fall b1
    Instruction i0;
    i0.op = Opcode::IAlu;
    i0.dsts = {0};
    i0.srcs = {1, 2};
    fn.block(b0).insts.push_back(i0);
    fn.block(b0).fall = BlockRef{f, b1};
    // b1: ret r0
    Instruction r;
    r.op = Opcode::Ret;
    r.srcs = {0};
    fn.block(b1).insts.push_back(r);

    Liveness live(fn);
    EXPECT_TRUE(live.liveIn(b0).test(1));
    EXPECT_TRUE(live.liveIn(b0).test(2));
    EXPECT_FALSE(live.liveIn(b0).test(0)); // defined before any use
    EXPECT_TRUE(live.liveOut(b0).test(0));
    EXPECT_TRUE(live.liveIn(b1).test(0));
}

TEST(LivenessTest, DefKillsUpstreamLiveness)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    Function &fn = prog.func(f);
    fn.setRegCount(3);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock();
    // b0: r1 = r0 ; fall b1    (r1 defined here)
    Instruction i0;
    i0.op = Opcode::IAlu;
    i0.dsts = {1};
    i0.srcs = {0, 0};
    fn.block(b0).insts.push_back(i0);
    fn.block(b0).fall = BlockRef{f, b1};
    // b1: use r1, then ret
    Instruction i1;
    i1.op = Opcode::IAlu;
    i1.dsts = {2};
    i1.srcs = {1, 1};
    fn.block(b1).insts.push_back(i1);
    Instruction r;
    r.op = Opcode::Ret;
    fn.block(b1).insts.push_back(r);

    Liveness live(fn);
    EXPECT_FALSE(live.liveIn(b0).test(1)); // killed by b0's def
    EXPECT_TRUE(live.liveIn(b1).test(1));
}

TEST(LivenessTest, LoopCarriesLiveness)
{
    test::DiamondLoop d = test::makeDiamondLoop();
    const Function &fn = d.w.program.func(d.f);
    Liveness live(fn);
    // The latch branches on a register; its source must be live somewhere
    // around the loop.
    const Instruction *latch = fn.block(d.b4).terminator();
    ASSERT_NE(latch, nullptr);
    EXPECT_TRUE(live.liveIn(d.b4).count() > 0 ||
                live.liveOut(d.b1).count() > 0);
    // liveInRegs returns a sorted list matching the bitset.
    const auto regs = live.liveInRegs(d.b4);
    EXPECT_EQ(regs.size(), live.liveIn(d.b4).count());
    EXPECT_TRUE(std::is_sorted(regs.begin(), regs.end()));
}

} // namespace
