/**
 * @file
 * Epoch-based reclamation battery: the EpochDomain primitive under
 * racing readers and writers (no garbage freed while a reader is
 * pinned, epochs monotone under concurrent advance, limbo drained on
 * shutdown), and the runtime controller on top of it (epoch and
 * serialized modes byte-identical at every worker count, deopt
 * publishes a single mutation, the boundary probe pins epoch-drain
 * edge cases to exact quanta).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hsd/record.hh"
#include "ir/program.hh"
#include "runtime/bundle.hh"
#include "runtime/controller.hh"
#include "runtime/patcher.hh"
#include "runtime/stats.hh"
#include "support/epoch.hh"
#include "support/fault.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using vp::epoch::EpochDomain;

// ------------------------------------------------------------ EpochDomain

TEST(EpochDomain, AdvancePublishesImmediatelyOutsideBatch)
{
    EpochDomain d;
    EXPECT_EQ(d.mutationEpoch(), 0u);
    EXPECT_EQ(d.codeEpoch(), 0u);
    d.advanceMutation();
    EXPECT_EQ(d.mutationEpoch(), 1u);
    EXPECT_EQ(d.codeEpoch(), 0u);
    d.advanceCode();
    EXPECT_EQ(d.codeEpoch(), 1u);
    EXPECT_EQ(d.mutationEpoch(), 1u);
}

TEST(EpochDomain, SeededCountersStartWhereTheSourceLeftOff)
{
    EpochDomain d(7, 3);
    EXPECT_EQ(d.mutationEpoch(), 7u);
    EXPECT_EQ(d.codeEpoch(), 3u);
}

TEST(EpochDomain, BatchCoalescesAdvancesIntoOnePublishedBump)
{
    EpochDomain d;
    {
        const EpochDomain::BatchGuard batch(&d);
        d.advanceMutation();
        d.advanceMutation();
        d.advanceMutation();
        d.advanceCode();
        d.advanceCode();
        // Nothing published while the batch is open.
        EXPECT_EQ(d.mutationEpoch(), 0u);
        EXPECT_EQ(d.codeEpoch(), 0u);
    }
    EXPECT_EQ(d.mutationEpoch(), 1u);
    EXPECT_EQ(d.codeEpoch(), 1u);
}

TEST(EpochDomain, NestedBatchesPublishAtOutermostCloseOnly)
{
    EpochDomain d;
    {
        const EpochDomain::BatchGuard outer(&d);
        d.advanceMutation();
        {
            const EpochDomain::BatchGuard inner(&d);
            d.advanceMutation();
        }
        // The inner close must not publish: the outer batch still owns
        // the transition.
        EXPECT_EQ(d.mutationEpoch(), 0u);
    }
    EXPECT_EQ(d.mutationEpoch(), 1u);
}

TEST(EpochDomain, EmptyBatchPublishesNothing)
{
    EpochDomain d;
    {
        const EpochDomain::BatchGuard batch(&d);
    }
    EXPECT_EQ(d.mutationEpoch(), 0u);
    EXPECT_EQ(d.codeEpoch(), 0u);
}

TEST(EpochDomain, NoGarbageFreedWhileAReaderIsPinned)
{
    EpochDomain d;
    EpochDomain::Participant *p = d.registerParticipant();

    bool freed = false;
    d.pin(p); // reader enters at epoch 0, holding references
    d.advanceMutation();
    d.retire([&freed] { freed = true; });

    // The reader pinned before the advance: its snapshot may still
    // reference the garbage, so reclaim must not touch it.
    EXPECT_EQ(d.reclaim(), 0u);
    EXPECT_FALSE(freed);
    EXPECT_EQ(d.limboSize(), 1u);

    d.unpin(p);
    EXPECT_EQ(d.reclaim(), 1u);
    EXPECT_TRUE(freed);
    EXPECT_TRUE(d.drained());
    d.unregisterParticipant(p);
}

TEST(EpochDomain, ReaderPinnedAfterThePublicationDoesNotBlock)
{
    EpochDomain d;
    EpochDomain::Participant *p = d.registerParticipant();

    bool freed = false;
    d.advanceMutation();
    d.retire([&freed] { freed = true; });
    d.pin(p); // pinned at the retire epoch: re-resolved past the unlink

    EXPECT_EQ(d.reclaim(), 1u);
    EXPECT_TRUE(freed);
    d.unpin(p);
    d.unregisterParticipant(p);
}

TEST(EpochDomain, QuiescentDomainReclaimsImmediately)
{
    EpochDomain d;
    int freed = 0;
    for (int i = 0; i < 4; ++i) {
        d.advanceMutation();
        d.retire([&freed] { ++freed; });
    }
    EXPECT_EQ(d.reclaim(), 4u);
    EXPECT_EQ(freed, 4);
    const EpochDomain::Stats s = d.stats();
    EXPECT_EQ(s.retired, 4u);
    EXPECT_EQ(s.reclaimed, 4u);
    EXPECT_EQ(s.peakLimbo, 4u);
}

TEST(EpochDomain, ReclaimAllDrainsUnconditionallyOnShutdown)
{
    EpochDomain d;
    EpochDomain::Participant *p = d.registerParticipant();
    bool freed = false;
    d.pin(p);
    d.advanceMutation();
    d.retire([&freed] { freed = true; });
    d.unpin(p);
    d.unregisterParticipant(p);

    EXPECT_FALSE(d.drained());
    EXPECT_EQ(d.reclaimAll(), 1u);
    EXPECT_TRUE(freed);
    EXPECT_TRUE(d.drained());
}

TEST(EpochDomain, DestructorRunsPendingReclaimers)
{
    bool freed = false;
    {
        EpochDomain d;
        d.advanceMutation();
        d.retire([&freed] { freed = true; });
    }
    EXPECT_TRUE(freed);
}

TEST(EpochDomain, EpochsAreMonotoneUnderConcurrentAdvance)
{
    EpochDomain d;
    constexpr int kWriters = 4;
    constexpr int kAdvancesPerWriter = 5000;
    std::atomic<bool> stop{false};
    std::atomic<bool> regression{false};

    std::thread sampler([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const std::uint64_t e = d.mutationEpoch();
            if (e < last)
                regression.store(true, std::memory_order_release);
            last = e;
        }
    });
    std::vector<std::thread> writers;
    for (int i = 0; i < kWriters; ++i) {
        writers.emplace_back([&] {
            for (int j = 0; j < kAdvancesPerWriter; ++j)
                d.advanceMutation();
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    sampler.join();

    EXPECT_FALSE(regression.load());
    EXPECT_EQ(d.mutationEpoch(),
              static_cast<std::uint64_t>(kWriters) * kAdvancesPerWriter);
}

/**
 * The full protocol under fire: stepping-engine-shaped readers race
 * installer/promoter/deopt-shaped writers. Each writer unlinks the
 * published node, advances, retires the old node with a canary-killing
 * reclaimer, and periodically runs reclaim; each reader pins, resolves
 * the published node, and verifies the canary is alive for everything
 * it can still reach. Any canary death inside a pinned window is a
 * use-after-free the grace period failed to prevent — under
 * VP_SANITIZE=thread the delete itself would also trip TSan/ASan.
 */
TEST(EpochDomain, RacingWritersNeverFreeANodeAReaderHolds)
{
    static constexpr std::uint64_t kLive = 0xfeedc0deull;

    struct Node
    {
        std::atomic<std::uint64_t> canary{kLive};
    };

    EpochDomain d;
    std::atomic<Node *> published{new Node};
    std::atomic<bool> stop{false};
    std::atomic<bool> corruption{false};

    constexpr int kReaders = 4;
    // Installer, promoter, deopt — the three runtime writer roles.
    constexpr int kWriters = 3;
    constexpr int kSwapsPerWriter = 4000;

    std::vector<EpochDomain::Participant *> parts;
    for (int i = 0; i < kReaders; ++i)
        parts.push_back(d.registerParticipant());

    std::vector<std::thread> readers;
    for (int i = 0; i < kReaders; ++i) {
        readers.emplace_back([&, i] {
            EpochDomain::Participant *p = parts[static_cast<std::size_t>(i)];
            while (!stop.load(std::memory_order_acquire)) {
                const EpochDomain::PinGuard pin(&d, p);
                // Pinned: the node resolved now cannot be freed until
                // we unpin, however many swaps the writers publish.
                Node *n = published.load(std::memory_order_acquire);
                for (int k = 0; k < 8; ++k) {
                    if (n->canary.load(std::memory_order_acquire) != kLive)
                        corruption.store(true, std::memory_order_release);
                }
            }
        });
    }

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&] {
            for (int j = 0; j < kSwapsPerWriter; ++j) {
                Node *fresh = new Node;
                Node *old = published.exchange(fresh,
                                               std::memory_order_acq_rel);
                d.advanceMutation();
                d.retire([old] {
                    old->canary.store(0, std::memory_order_release);
                    delete old;
                });
                if ((j & 63) == 0)
                    d.reclaim();
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_FALSE(corruption.load());
    for (EpochDomain::Participant *p : parts)
        d.unregisterParticipant(p);

    // Shutdown drain: everything retired must be reclaimed exactly once.
    d.reclaimAll();
    delete published.load();
    EXPECT_TRUE(d.drained());
    const EpochDomain::Stats s = d.stats();
    EXPECT_EQ(s.retired,
              static_cast<std::uint64_t>(kWriters) * kSwapsPerWriter);
    EXPECT_EQ(s.retired, s.reclaimed);
}

// -------------------------------------------------- Program epoch carry

TEST(ProgramEpochs, CopySeedsCountersButNotParticipants)
{
    workload::Workload w = workload::makeGzip("A");
    ir::Program a = w.program;
    a.noteMutation();
    a.noteMutation();
    const std::uint64_t me = a.mutationEpoch();

    ir::Program b = a; // fresh domain, seeded counters
    EXPECT_EQ(b.mutationEpoch(), me);
    EXPECT_EQ(b.codeEpoch(), a.codeEpoch());
    // The copy's domain is its own: advancing one never moves the other.
    b.noteMutation();
    EXPECT_EQ(b.mutationEpoch(), me + 1);
    EXPECT_EQ(a.mutationEpoch(), me);
}

// ------------------------------------------------------ RuntimeController

/** Run @p w online and render its report. */
std::string
runReport(const workload::Workload &w, bool epoch, unsigned workers,
          const fault::FaultConfig *fault = nullptr)
{
    runtime::RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.budget = 600'000;
    cfg.workers = workers;
    cfg.epochReclaim = epoch;
    if (fault) {
        cfg.fault = *fault;
        cfg.watchdog = true;
    }
    runtime::RuntimeController controller(w, cfg);
    return toText(controller.run(), w.label());
}

TEST(EpochRuntime, ReportsByteIdenticalToSerializedPath)
{
    // The whole point of the epoch machinery: it changes when plan
    // memory is reclaimed and how often plans rebuild, never which
    // bundle serves which quantum — at any worker count.
    const workload::Workload w = workload::makeMcf("A");
    const std::string base = runReport(w, /*epoch=*/true, 1);
    EXPECT_EQ(base, runReport(w, /*epoch=*/false, 1));
    EXPECT_EQ(base, runReport(w, /*epoch=*/true, 8));
    EXPECT_EQ(base, runReport(w, /*epoch=*/false, 8));
}

TEST(EpochRuntime, FaultInjectedReportsByteIdenticalAcrossModes)
{
    // Fault injection drives the deopt/quarantine paths the grace
    // period protects; the A/B must survive them too.
    const Expected<fault::FaultConfig> fc =
        fault::FaultConfig::parse("0.2", 7);
    ASSERT_TRUE(fc.isOk());
    const workload::Workload w = workload::makeGzip("A");
    const std::string base = runReport(w, true, 1, &fc.value());
    EXPECT_EQ(base, runReport(w, false, 1, &fc.value()));
    EXPECT_EQ(base, runReport(w, true, 8, &fc.value()));
    EXPECT_EQ(base, runReport(w, false, 8, &fc.value()));
}

TEST(EpochRuntime, EpochModeNeverStallsOrRebuildsMoreThanSerialized)
{
    const workload::Workload w = workload::makeMpeg2dec("A");
    runtime::RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.budget = 600'000;

    cfg.epochReclaim = true;
    runtime::RuntimeController ec(w, cfg);
    const runtime::RuntimeStats es = ec.run();

    cfg.epochReclaim = false;
    runtime::RuntimeController sc(w, cfg);
    const runtime::RuntimeStats ss = sc.run();

    // Identical execution...
    EXPECT_EQ(toText(es, w.label()), toText(ss, w.label()));
    // ...but the epoch path must not invalidate the engine's plan
    // working set more often than the stop-the-world reference.
    EXPECT_LE(es.installStallQuanta, ss.installStallQuanta);
    EXPECT_LE(es.planRebuilds, ss.planRebuilds);
    // An install-heavy run stalls the serialized engine at least once.
    ASSERT_GT(ss.installs, 0u);
    EXPECT_GT(ss.installStallQuanta, 0u);
    // Serialized mode never frees plans early; only the epoch path
    // pushes retired plan tables through the limbo.
    EXPECT_EQ(ss.plansRetired, 0u);
}

TEST(EpochRuntime, DeoptPublishesExactlyOneMutationEpoch)
{
    // Regression for the unpatch→layout double-bump: a deopt is one
    // structural transition, so the engine must observe exactly one
    // published mutation — not one for the arc restores and a second
    // for the tombstone relayout.
    workload::Workload w = workload::makeGzip("A");
    const VpConfig cfg = VpConfig::variant(true, true);
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    ASSERT_FALSE(r.records.empty());
    runtime::PackageBundle bundle;
    for (const hsd::HotSpotRecord &rec : r.records) {
        bundle = runtime::synthesizeBundle(
            w.program, runtime::canonicalizeRecord(rec), cfg);
        if (!bundle.empty())
            break;
    }
    ASSERT_FALSE(bundle.empty());

    ir::Program live = w.program;
    runtime::LivePatcher patcher(live, w.program);
    const runtime::InstalledBundle ib = patcher.install(bundle);
    ASSERT_GT(ib.launchPoints, 0u);

    const std::uint64_t before = live.mutationEpoch();
    patcher.deopt(ib);
    EXPECT_EQ(live.mutationEpoch(), before + 1);
}

TEST(EpochRuntime, InstallDoesNotMoveTheCodeEpoch)
{
    // Installs splice *appended* functions and retarget arcs; no
    // pre-existing block changes address, so the engine's block-plan
    // working set (keyed on the code epoch) must survive untouched.
    workload::Workload w = workload::makeGzip("A");
    const VpConfig cfg = VpConfig::variant(true, true);
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    ASSERT_FALSE(r.records.empty());
    runtime::PackageBundle bundle;
    for (const hsd::HotSpotRecord &rec : r.records) {
        bundle = runtime::synthesizeBundle(
            w.program, runtime::canonicalizeRecord(rec), cfg);
        if (!bundle.empty())
            break;
    }
    ASSERT_FALSE(bundle.empty());

    ir::Program live = w.program;
    runtime::LivePatcher patcher(live, w.program);
    const std::uint64_t code0 = live.codeEpoch();
    const runtime::InstalledBundle ib = patcher.install(bundle);
    EXPECT_EQ(live.codeEpoch(), code0) << "append-only install compacted";

    // The deopt's tombstone empties the husks and relayout moves every
    // block behind them: that IS code motion and must re-key.
    patcher.deopt(ib);
    EXPECT_GT(live.codeEpoch(), code0);
}

// ------------------------------------------- deterministic quantum clock

TEST(EpochRuntime, BoundaryProbePinsDrainToExactQuanta)
{
    const workload::Workload w = workload::makeMcf("A");
    runtime::RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.budget = 600'000;

    std::vector<std::uint64_t> quanta;
    std::vector<std::size_t> limbo;
    runtime::RuntimeController controller(w, cfg);
    controller.setBoundaryProbe([&](std::uint64_t q) {
        quanta.push_back(q);
        limbo.push_back(controller.liveProgram().epochDomain().limboSize());
    });
    const runtime::RuntimeStats s = controller.run();

    // The probe fires at every boundary, on the deterministic quantum
    // clock: 1, 2, ..., quanta — no sleeps, no wall-clock slack.
    ASSERT_EQ(quanta.size(), s.quanta);
    for (std::size_t i = 0; i < quanta.size(); ++i)
        EXPECT_EQ(quanta[i], i + 1);
    EXPECT_EQ(controller.quantumClock(), s.quanta);

    // The engine is quiescent between quanta, so the boundary reclaim
    // preceding the probe frees everything retired earlier: the grace
    // period never spans more than one quantum, at every boundary.
    for (std::size_t i = 0; i < limbo.size(); ++i)
        EXPECT_EQ(limbo[i], 0u) << "limbo backlog at quantum " << quanta[i];

    // Shutdown contract: the run ends with a drained retire list.
    EXPECT_TRUE(controller.liveProgram().epochDomain().drained());
    if (s.plansReclaimed > 0) {
        EXPECT_GT(s.peakLimbo, 0u);
    }
}

} // namespace
