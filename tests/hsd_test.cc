/**
 * @file
 * Tests for the Hot Spot Detector substrate: BBB candidacy/contention/
 * saturation, HDC-driven detection, timers, record snapshots, and the
 * software redundancy filter.
 */

#include <gtest/gtest.h>

#include "hsd/bbb.hh"
#include "hsd/detector.hh"
#include "hsd/filter.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"

namespace
{

using namespace vp;
using namespace vp::hsd;

HsdConfig
smallCfg()
{
    HsdConfig cfg;
    cfg.sets = 4;
    cfg.ways = 2;
    return cfg;
}

// --------------------------------------------------------------------- BBB

TEST(Bbb, BranchBecomesCandidateAtThreshold)
{
    BranchBehaviorBuffer bbb(smallCfg()); // threshold 16
    for (int i = 0; i < 15; ++i)
        EXPECT_FALSE(bbb.access(0x1000, 1, true));
    EXPECT_TRUE(bbb.access(0x1000, 1, true)); // 16th execution
    EXPECT_EQ(bbb.numCandidates(), 1u);
}

TEST(Bbb, SnapshotContainsCountsAndIdentity)
{
    BranchBehaviorBuffer bbb(smallCfg());
    for (int i = 0; i < 20; ++i)
        bbb.access(0x1000, 42, i % 2 == 0); // 10 taken of 20
    const auto snap = bbb.snapshotCandidates();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].pc, 0x1000u);
    EXPECT_EQ(snap[0].behavior, 42u);
    EXPECT_EQ(snap[0].exec, 20u);
    EXPECT_EQ(snap[0].taken, 10u);
    EXPECT_DOUBLE_EQ(snap[0].takenFraction(), 0.5);
}

TEST(Bbb, CountersFreezeTogetherAtSaturation)
{
    HsdConfig cfg = smallCfg();
    cfg.counterBits = 4;        // max 15
    cfg.candidateThreshold = 8; // below the saturation point
    BranchBehaviorBuffer bbb(cfg);
    for (int i = 0; i < 100; ++i)
        bbb.access(0x1000, 1, true); // always taken
    const auto snap = bbb.snapshotCandidates();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].exec, 15u);
    EXPECT_EQ(snap[0].taken, 15u);
    // Taken fraction preserved at saturation (Section 3.1).
    EXPECT_DOUBLE_EQ(snap[0].takenFraction(), 1.0);
}

TEST(Bbb, SetContentionDropsExtraBranch)
{
    // 4 sets * 4-byte insts: pcs 2048 bytes apart share a set. 2 ways.
    HsdConfig cfg = smallCfg(); // 4 sets, 2 ways
    BranchBehaviorBuffer bbb(cfg);
    const ir::Addr base = 0x1000;
    const ir::Addr step = 4 * cfg.sets; // same set index
    // Make two branches candidates.
    for (int i = 0; i < 20; ++i) {
        bbb.access(base, 1, true);
        bbb.access(base + step, 2, true);
    }
    EXPECT_EQ(bbb.numCandidates(), 2u);
    // A third hot branch in the same set cannot be tracked: all ways are
    // candidates (the Section 3.1 contention effect).
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(bbb.access(base + 2 * step, 3, true));
    EXPECT_EQ(bbb.numCandidates(), 2u);
}

TEST(Bbb, NonCandidateIsEvictedByLru)
{
    HsdConfig cfg = smallCfg(); // 2 ways
    BranchBehaviorBuffer bbb(cfg);
    const ir::Addr step = 4 * cfg.sets;
    bbb.access(0x1000, 1, true);           // way 0, not candidate
    bbb.access(0x1000 + step, 2, true);    // way 1, not candidate
    // Third branch evicts the LRU non-candidate (behavior 1).
    bbb.access(0x1000 + 2 * step, 3, true);
    EXPECT_EQ(bbb.numValid(), 2u);
    // Behavior 1 must re-allocate from scratch (counts reset).
    for (int i = 0; i < 15; ++i)
        bbb.access(0x1000, 1, true);
    EXPECT_EQ(bbb.numCandidates(), 0u); // restarted at 0, now at 15 < 16
}

TEST(Bbb, RefreshEvictsOnlyNonCandidates)
{
    BranchBehaviorBuffer bbb(smallCfg());
    for (int i = 0; i < 20; ++i)
        bbb.access(0x1000, 1, true); // candidate
    bbb.access(0x2000, 2, true);     // tepid
    EXPECT_EQ(bbb.numValid(), 2u);
    bbb.refreshNonCandidates();
    EXPECT_EQ(bbb.numValid(), 1u);
    EXPECT_EQ(bbb.numCandidates(), 1u);
}

TEST(Bbb, ClearDropsEverything)
{
    BranchBehaviorBuffer bbb(smallCfg());
    for (int i = 0; i < 20; ++i)
        bbb.access(0x1000, 1, true);
    bbb.clear();
    EXPECT_EQ(bbb.numValid(), 0u);
    EXPECT_EQ(bbb.numCandidates(), 0u);
    EXPECT_TRUE(bbb.snapshotCandidates().empty());
}

// ---------------------------------------------------------------- detector

TEST(Detector, DetectsSteadyHotLoop)
{
    test::TinyWorkload t = test::makeTiny();
    trace::ExecutionEngine engine(t.w.program, t.w);
    HotSpotDetector det(HsdConfig{}, &engine.oracle());
    engine.addSink(&det);
    engine.run(200'000);
    EXPECT_GE(det.detections(), 1u);
    EXPECT_GT(det.branchesSeen(), 10'000u);
    // Each record holds at least a handful of branches with counts.
    for (const auto &rec : det.records()) {
        EXPECT_FALSE(rec.branches.empty());
        for (const auto &hb : rec.branches) {
            EXPECT_GE(hb.exec, 16u); // candidates crossed the threshold
            EXPECT_LE(hb.taken, hb.exec);
        }
    }
}

TEST(Detector, DetectsBothPhases)
{
    test::TinyWorkload t = test::makeTiny(42, 800'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    HotSpotDetector det(HsdConfig{}, &engine.oracle());
    engine.addSink(&det);
    engine.run(800'000);
    bool saw0 = false, saw1 = false;
    for (const auto &rec : det.records()) {
        saw0 |= (rec.truePhase == 0);
        saw1 |= (rec.truePhase == 1);
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw1);
}

TEST(Detector, NoDetectionWithoutHotCode)
{
    // A workload whose every branch executes rarely: a long chain of
    // distinct cold branches.
    workload::ProgramBuilder b("cold", 3);
    const auto f = b.function("m", 8);
    const auto head = b.block(f);
    b.entry(f, head);
    b.compute(f, head, 2);
    // 600 distinct branches in a chain; loop over the chain only twice
    // per full program run, so per-branch counts stay below candidacy
    // within a refresh interval.
    ir::BlockId cur = head;
    std::vector<ir::BlockId> chain;
    for (int i = 0; i < 600; ++i) {
        const auto t1 = b.block(f);
        const auto j = b.block(f);
        b.condbr(f, cur, t1, j, {0.02});
        b.compute(f, t1, 1);
        b.jump(f, t1, j);
        b.compute(f, j, 1);
        cur = j;
    }
    const auto epi = b.block(f);
    b.condbr(f, cur, head, epi, {0.5});
    b.ret(f, epi);
    b.entryFunc(f);
    auto w = b.finish("cold", "A",
                      workload::PhaseSchedule({{0, 1'000'000}}, false),
                      30'000);

    trace::ExecutionEngine engine(w.program, w);
    HotSpotDetector det(HsdConfig{}, &engine.oracle());
    engine.addSink(&det);
    engine.run(30'000);
    EXPECT_EQ(det.detections(), 0u);
}

TEST(Detector, RestartsAfterDetection)
{
    test::TinyWorkload t = test::makeTiny(42, 600'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    HotSpotDetector det(HsdConfig{}, &engine.oracle());
    engine.addSink(&det);
    engine.run(600'000);
    // The same phase keeps getting re-detected (software filters later).
    EXPECT_GE(det.detections(), 3u);
    // Detections are strictly ordered in time.
    for (std::size_t i = 1; i < det.records().size(); ++i) {
        EXPECT_GT(det.records()[i].detectedAtBranch,
                  det.records()[i - 1].detectedAtBranch);
    }
}

// ------------------------------------------------------------------ filter

HotSpotRecord
record(std::vector<HotBranch> branches)
{
    HotSpotRecord r;
    r.branches = std::move(branches);
    return r;
}

HotBranch
hb(ir::BehaviorId id, std::uint32_t exec, std::uint32_t taken)
{
    HotBranch h;
    h.behavior = id;
    h.pc = 0x1000 + id * 4;
    h.exec = exec;
    h.taken = taken;
    return h;
}

TEST(Filter, IdenticalRecordsAreSame)
{
    const auto a = record({hb(1, 100, 90), hb(2, 100, 10), hb(3, 50, 25)});
    EXPECT_TRUE(sameHotSpot(a, a));
}

TEST(Filter, ThirtyPercentMissingMakesDifferent)
{
    // 10 branches vs the same with 3 missing (30%).
    std::vector<HotBranch> as, bs;
    for (ir::BehaviorId i = 1; i <= 10; ++i) {
        as.push_back(hb(i, 100, 50));
        if (i <= 7)
            bs.push_back(hb(i, 100, 50));
    }
    EXPECT_FALSE(sameHotSpot(record(as), record(bs)));
    // 2 missing (20%) stays the same hot spot.
    bs.push_back(hb(8, 100, 50));
    EXPECT_TRUE(sameHotSpot(record(as), record(bs)));
}

TEST(Filter, MissingIsSymmetric)
{
    std::vector<HotBranch> as, bs;
    for (ir::BehaviorId i = 1; i <= 7; ++i)
        as.push_back(hb(i, 100, 50));
    for (ir::BehaviorId i = 1; i <= 10; ++i)
        bs.push_back(hb(i, 100, 50));
    // B has 30% not in A.
    EXPECT_FALSE(sameHotSpot(record(as), record(bs)));
    EXPECT_FALSE(sameHotSpot(record(bs), record(as)));
}

TEST(Filter, SingleBiasFlipMakesDifferent)
{
    const auto a = record({hb(1, 100, 90), hb(2, 100, 50), hb(3, 100, 20)});
    const auto b = record({hb(1, 100, 10), hb(2, 100, 50), hb(3, 100, 20)});
    // Branch 1 flips from taken-biased to not-taken-biased.
    EXPECT_FALSE(sameHotSpot(a, b));
}

TEST(Filter, UnbiasedSwingIsTolerated)
{
    // Branch 2 moves 0.5 -> 0.65: never biased, so not a flip.
    const auto a = record({hb(1, 100, 90), hb(2, 100, 50)});
    const auto b = record({hb(1, 100, 95), hb(2, 100, 65)});
    EXPECT_TRUE(sameHotSpot(a, b));
}

TEST(Filter, MaxBiasFlipsConfigurable)
{
    const auto a = record({hb(1, 100, 90), hb(2, 100, 90), hb(3, 100, 50)});
    const auto b = record({hb(1, 100, 10), hb(2, 100, 90), hb(3, 100, 50)});
    FilterConfig cfg;
    cfg.maxBiasFlips = 1;
    EXPECT_TRUE(sameHotSpot(a, b, cfg));
    cfg.maxBiasFlips = 0;
    EXPECT_FALSE(sameHotSpot(a, b, cfg));
}

TEST(Filter, FilterRedundantKeepsFirstOfEachPhase)
{
    const auto p0 = record({hb(1, 100, 90), hb(2, 100, 10)});
    const auto p0_again = record({hb(1, 100, 85), hb(2, 100, 12)});
    const auto p1 = record({hb(1, 100, 5), hb(2, 100, 95)});
    const auto kept = filterRedundant({p0, p0_again, p1, p0_again});
    EXPECT_EQ(kept.size(), 2u);
    EXPECT_DOUBLE_EQ(kept[0].branches[0].takenFraction(), 0.9);
    EXPECT_DOUBLE_EQ(kept[1].branches[0].takenFraction(), 0.05);
}

TEST(Filter, EmptyRecordsMatchOnlyEachOther)
{
    const auto empty = record({});
    const auto full = record({hb(1, 100, 50)});
    EXPECT_TRUE(sameHotSpot(empty, empty));
    EXPECT_FALSE(sameHotSpot(empty, full));
    EXPECT_FALSE(sameHotSpot(full, empty));
}

TEST(Filter, EndToEndFilteringCollapsesRedetections)
{
    test::TinyWorkload t = test::makeTiny(42, 800'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    HotSpotDetector det(HsdConfig{}, &engine.oracle());
    engine.addSink(&det);
    engine.run(800'000);
    const auto kept = filterRedundant(det.records());
    EXPECT_LT(kept.size(), det.records().size());
    EXPECT_GE(kept.size(), 2u); // two distinct phases survive
    EXPECT_LE(kept.size(), 6u); // but not every re-detection
}

TEST(RecordTest, FindAndMaxExec)
{
    const auto r = record({hb(1, 100, 90), hb(2, 300, 10)});
    ASSERT_NE(r.find(2), nullptr);
    EXPECT_EQ(r.find(2)->exec, 300u);
    EXPECT_EQ(r.find(9), nullptr);
    EXPECT_EQ(r.maxExec(), 300u);
}

} // namespace
