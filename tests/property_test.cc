/**
 * @file
 * Property-style invariant sweeps. Where the other test files verify
 * specific behaviors, these run broad structural checks over every
 * Table 1 workload, every pipeline configuration, and randomized inputs:
 * package well-formedness, exit-stub discipline, provenance consistency,
 * scheduler legality, flow conservation, and detector count sanity.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "hsd/detector.hh"
#include "ir/cfg.hh"
#include "ir/verify.hh"
#include "opt/schedule.hh"
#include "opt/weights.hh"
#include "region/identify.hh"
#include "tests/helpers.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;

// ======================================================================
// Whole-pipeline structural invariants, over workloads x configurations.
// ======================================================================

struct SweepCase
{
    std::string name;
    std::string input;
    bool inference;
    bool linking;
};

std::vector<SweepCase>
sweepCases()
{
    // Every benchmark under the full configuration, plus a few
    // representative benchmarks under all four configurations.
    std::vector<SweepCase> cases;
    for (const auto &spec : workload::allBenchmarks())
        cases.push_back({spec.name, spec.inputs.front(), true, true});
    for (const char *name : {"134.perl", "124.m88ksim", "175.vpr"}) {
        for (bool inf : {false, true}) {
            for (bool link : {false, true}) {
                if (inf && link)
                    continue; // already covered above
                cases.push_back({name, "A", inf, link});
            }
        }
    }
    return cases;
}

class PackageInvariants : public ::testing::TestWithParam<SweepCase>
{
  protected:
    void
    SetUp() override
    {
        w_ = workload::makeWorkload(GetParam().name, GetParam().input);
        w_.maxDynInsts = std::min<std::uint64_t>(w_.maxDynInsts, 600'000);
        VacuumPacker packer(
            w_, VpConfig::variant(GetParam().inference, GetParam().linking));
        r_ = packer.run();
    }

    workload::Workload w_;
    VpResult r_;
};

TEST_P(PackageInvariants, ExitBlocksJumpOnlyIntoOriginalCode)
{
    for (const auto &pkg : r_.packaged.packages) {
        const Function &P = r_.packaged.program.func(pkg.func);
        for (const auto &bb : P.blocks()) {
            if (bb.kind != BlockKind::Exit)
                continue;
            ASSERT_TRUE(bb.terminator());
            EXPECT_EQ(bb.terminator()->op, Opcode::Jump);
            ASSERT_TRUE(bb.taken.valid());
            EXPECT_FALSE(
                r_.packaged.program.func(bb.taken.func).isPackage())
                << "exit must land in original code";
        }
    }
}

TEST_P(PackageInvariants, ExitFramesReferenceOriginalCode)
{
    for (const auto &pkg : r_.packaged.packages) {
        const Function &P = r_.packaged.program.func(pkg.func);
        for (const auto &bb : P.blocks()) {
            for (const BlockRef &frame : bb.exitFrames) {
                ASSERT_TRUE(frame.valid());
                EXPECT_FALSE(
                    r_.packaged.program.func(frame.func).isPackage());
            }
            if (bb.kind != BlockKind::Exit) {
                EXPECT_TRUE(bb.exitFrames.empty());
            }
        }
    }
}

TEST_P(PackageInvariants, CopiedBranchesKeepOriginalIdentity)
{
    const auto index = region::branchIndex(w_.program);
    for (const auto &pkg : r_.packaged.packages) {
        const Function &P = r_.packaged.program.func(pkg.func);
        for (const auto &bb : P.blocks()) {
            if (!bb.endsInCondBr())
                continue;
            EXPECT_TRUE(index.count(bb.terminator()->behavior))
                << "package branch without an original counterpart";
        }
    }
}

TEST_P(PackageInvariants, BlockProvenancePointsAtOriginalBlocks)
{
    for (const auto &pkg : r_.packaged.packages) {
        const Function &P = r_.packaged.program.func(pkg.func);
        for (const auto &bb : P.blocks()) {
            if (!bb.origin.valid())
                continue;
            ASSERT_LT(bb.origin.func, w_.program.numFunctions());
            ASSERT_LT(bb.origin.block,
                      w_.program.func(bb.origin.func).numBlocks());
            EXPECT_FALSE(w_.program.func(bb.origin.func).isPackage());
        }
    }
}

TEST_P(PackageInvariants, CtxTablesAlignWithBlocks)
{
    for (const auto &pkg : r_.packaged.packages) {
        const Function &P = r_.packaged.program.func(pkg.func);
        EXPECT_EQ(pkg.ctx.size(), P.numBlocks());
        for (BlockId e : pkg.entryBlocks) {
            ASSERT_LT(e, P.numBlocks());
            EXPECT_TRUE(pkg.ctx.at(e).empty())
                << "entry blocks belong to the root: empty context";
        }
    }
}

TEST_P(PackageInvariants, LaunchTargetsAreEntryBlocks)
{
    // Every arc from original code into a package lands on one of that
    // package's entry blocks (or its function entry, for patched calls).
    std::unordered_map<FuncId, const package::PackageInfo *> by_func;
    for (const auto &pkg : r_.packaged.packages)
        by_func[pkg.func] = &pkg;

    for (const Function &fn : r_.packaged.program.functions()) {
        if (fn.isPackage())
            continue;
        for (const BasicBlock &bb : fn.blocks()) {
            for (const BlockRef &t : {bb.taken, bb.fall}) {
                if (!t.valid() || !by_func.count(t.func))
                    continue;
                const auto &pkg = *by_func.at(t.func);
                const bool is_entry =
                    std::find(pkg.entryBlocks.begin(), pkg.entryBlocks.end(),
                              t.block) != pkg.entryBlocks.end();
                const bool is_func_entry =
                    t.block ==
                    r_.packaged.program.func(t.func).entry();
                EXPECT_TRUE(is_entry || is_func_entry)
                    << fn.name() << ":B" << bb.id << " launches into a "
                    << "non-entry package block";
            }
        }
    }
}

TEST_P(PackageInvariants, PackagedProgramAlwaysVerifies)
{
    EXPECT_TRUE(verify(r_.packaged.program).empty());
}

TEST_P(PackageInvariants, RootsAreDistinctPerRegion)
{
    // A region produces at most one package per root function.
    std::set<std::pair<std::size_t, FuncId>> seen;
    for (const auto &pkg : r_.packaged.packages) {
        const auto key = std::make_pair(pkg.regionIndex, pkg.rootOrig);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate package for region " << pkg.regionIndex;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackageInvariants, ::testing::ValuesIn(sweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        std::string n = info.param.name + "_" + info.param.input + "_" +
                        (info.param.inference ? "inf" : "noinf") + "_" +
                        (info.param.linking ? "link" : "nolink");
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

// ======================================================================
// Detector count sanity across hardware configurations.
// ======================================================================

struct HsdCase
{
    unsigned counterBits;
    std::uint32_t candidateThreshold;
    std::uint64_t refreshInterval;
};

class DetectorSweep : public ::testing::TestWithParam<HsdCase>
{
};

TEST_P(DetectorSweep, RecordsRespectHardwareLimits)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    hsd::HsdConfig cfg;
    cfg.counterBits = GetParam().counterBits;
    cfg.candidateThreshold = GetParam().candidateThreshold;
    cfg.refreshInterval = GetParam().refreshInterval;
    hsd::HotSpotDetector det(cfg, &engine.oracle());
    engine.addSink(&det);
    engine.run(300'000);

    const std::uint32_t sat = (1u << cfg.counterBits) - 1;
    for (const auto &rec : det.records()) {
        for (const auto &hb : rec.branches) {
            EXPECT_GE(hb.exec, cfg.candidateThreshold);
            EXPECT_LE(hb.exec, sat);
            EXPECT_LE(hb.taken, hb.exec);
        }
        // A hot spot fits in the BBB.
        EXPECT_LE(rec.branches.size(),
                  static_cast<std::size_t>(cfg.sets) * cfg.ways);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Hardware, DetectorSweep,
    ::testing::Values(HsdCase{9, 16, 8192},    // Table 2
                      HsdCase{7, 16, 8192},    // narrow counters
                      HsdCase{9, 4, 8192},     // eager candidacy
                      HsdCase{9, 64, 8192},    // reluctant candidacy
                      HsdCase{9, 16, 1024},    // fast refresh
                      HsdCase{12, 16, 32768}), // wide and slow
    [](const ::testing::TestParamInfo<HsdCase> &info) {
        return "bits" + std::to_string(info.param.counterBits) + "_thr" +
               std::to_string(info.param.candidateThreshold) + "_ref" +
               std::to_string(info.param.refreshInterval);
    });

// ======================================================================
// Scheduler legality on randomized blocks.
// ======================================================================

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SchedulerFuzz, SchedulesAreAlwaysLegal)
{
    // Build a random block via the workload builder (realistic mixes).
    workload::ProgramBuilder b("fuzz", GetParam());
    const FuncId f = b.function("f", 24);
    const BlockId b0 = b.block(f);
    b.entry(f, b0);
    Rng rng(GetParam());
    workload::ComputeMix mix;
    mix.chain = 0.2 + 0.6 * rng.real();
    mix.load = 0.35 * rng.real();
    mix.store = 0.2 * rng.real();
    mix.falu = 0.3 * rng.real();
    b.compute(f, b0, 8 + static_cast<unsigned>(rng.below(60)), mix);
    b.ret(f, b0);

    const BasicBlock &bb = b.program().func(f).block(b0);
    const sim::MachineConfig mc;
    const auto deps = opt::buildDeps(bb, mc);
    const auto sched = opt::scheduleBlock(bb, mc);

    // Every instruction scheduled exactly once.
    ASSERT_EQ(sched.order.size(), bb.insts.size());
    std::vector<bool> seen(bb.insts.size(), false);
    for (std::size_t i : sched.order) {
        ASSERT_LT(i, bb.insts.size());
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }

    // Dependence latencies respected.
    for (const auto &e : deps) {
        if (e.latency == 0) {
            // Order-only edge: issue cycle may tie but the position in
            // the final order must respect it.
            const auto pos = [&](std::size_t x) {
                return std::find(sched.order.begin(), sched.order.end(),
                                 x) -
                       sched.order.begin();
            };
            EXPECT_LT(pos(e.from), pos(e.to));
        } else {
            EXPECT_GE(sched.cycle[e.to], sched.cycle[e.from] + e.latency);
        }
        continue;
    }

    // Per-cycle resource limits.
    std::unordered_map<unsigned, unsigned> issue;
    std::unordered_map<unsigned, std::array<unsigned, 5>> fus;
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
        if (bb.insts[i].pseudo)
            continue;
        ++issue[sched.cycle[i]];
        ++fus[sched.cycle[i]]
             [static_cast<unsigned>(sim::fuClassOf(bb.insts[i].op))];
    }
    for (const auto &[cyc, n] : issue)
        EXPECT_LE(n, mc.issueWidth) << "cycle " << cyc;
    for (const auto &[cyc, per] : fus) {
        EXPECT_LE(per[0], mc.numIAlu);
        EXPECT_LE(per[1], mc.numFp);
        EXPECT_LE(per[2], mc.numMem);
        EXPECT_LE(per[3], mc.numBranch);
    }

    // Terminator last.
    EXPECT_EQ(sched.order.back(), bb.insts.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// ======================================================================
// Flow-weight conservation.
// ======================================================================

class WeightsFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WeightsFuzz, FlowIsConservedAtEveryBlock)
{
    // Random diamond+loop shapes via the tiny workload's worker
    // structure; check incoming flow equals block weight equals outgoing
    // flow (for blocks with successors).
    test::TinyWorkload t = test::makeTiny(GetParam(), 10'000);
    const Function &fn = t.w.program.func(t.alpha);

    // Stamp arbitrary but valid probabilities.
    Rng rng(GetParam());
    Function copy = fn;
    for (auto &bb : copy.blocks()) {
        if (bb.endsInCondBr())
            bb.terminator()->profProb = 0.05 + 0.9 * rng.real();
    }
    const opt::FlowWeights w =
        opt::computeWeights(copy, {copy.entry()}, 5000, 1e-10);

    const auto preds = predecessors(copy);
    for (BlockId b = 0; b < copy.numBlocks(); ++b) {
        double in = (b == copy.entry()) ? 1.0 : 0.0;
        for (BlockId p : preds[b]) {
            const BasicBlock &pb = copy.block(p);
            if (pb.taken.valid() && pb.taken.func == copy.id() &&
                pb.taken.block == b) {
                in += w.taken[p];
            }
            if (pb.fall.valid() && pb.fall.func == copy.id() &&
                pb.fall.block == b) {
                in += w.fall[p];
            }
        }
        EXPECT_NEAR(in, w.block[b], 1e-5) << "block " << b;
        const double out = w.taken[b] + w.fall[b];
        if (copy.block(b).taken.valid() || copy.block(b).fall.valid()) {
            EXPECT_NEAR(out, w.block[b], 1e-5) << "block " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightsFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
