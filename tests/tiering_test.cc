/**
 * @file
 * Properties of two-tier bundle installation: the tiered run retires
 * the same logical instruction/branch stream as the untiered run (the
 * fast-install path changes *where* code executes, never *what*), every
 * installed tier-0 bundle is eventually promoted or retired (no run
 * ends serving fast-install code), tier 0 reaches its first install
 * strictly earlier than tier-1-only on every roster row, and
 * `--no-tiering` really disables the whole machinery.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ir/verify.hh"
#include "runtime/controller.hh"
#include "runtime/stats.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::runtime;

/** Trimmed roster budget: enough for detection + several installs per
 *  row, small enough that the whole roster stays in unit-test time. */
constexpr std::uint64_t kBudget = 300'000;

/**
 * Fingerprint of the first @p limit retired conditional branches, in
 * *logical* terms: the branch's original BehaviorId and its oracle
 * outcome (the layout pass may swap a clone's taken/fall targets, which
 * invertSense undoes). Two runs over the same workload must produce the
 * same fingerprint no matter what code — original, tier-0 clone, tier-1
 * optimized package — is serving each retire.
 */
class BranchStreamSink final : public trace::InstSink
{
  public:
    explicit BranchStreamSink(std::uint64_t limit) : limit_(limit) {}

    void
    onRetire(const trace::RetiredInst &ri) override
    {
        if (count_ >= limit_)
            return;
        ++count_;
        const bool outcome = ri.branchTaken ^ ri.inst->invertSense;
        hash_ = (hash_ ^ (ri.inst->behavior * 2 + outcome)) *
                1099511628211ull;
    }

    unsigned eventMask() const override { return trace::kEventBranches; }

    std::uint64_t count() const { return count_; }
    std::uint64_t hash() const { return hash_; }

  private:
    std::uint64_t limit_;
    std::uint64_t count_ = 0;
    std::uint64_t hash_ = 14695981039346656037ull;
};

RuntimeStats
runOnce(workload::Workload &w, bool tiering,
        std::uint64_t budget = kBudget, unsigned workers = 1,
        trace::InstSink *sink = nullptr)
{
    RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.budget = budget;
    cfg.workers = workers;
    cfg.tiering = tiering;
    RuntimeController controller(w, cfg);
    if (sink)
        controller.addSink(sink);
    return controller.run();
}

TEST(Tiering, BranchStreamMatchesUntieredAcrossRoster)
{
    // Packaging removes jumps and calls, so at an equal instruction
    // budget the two modes reach different points of the program; the
    // invariant is the *logical* branch stream — compare the first 10k
    // conditional branches of each run by BehaviorId + oracle outcome.
    constexpr std::uint64_t kPrefix = 10'000;
    for (workload::Workload &w : workload::makeAllWorkloads()) {
        workload::Workload w2 = w;
        BranchStreamSink tiered(kPrefix), untiered(kPrefix);
        runOnce(w, true, kBudget, 1, &tiered);
        runOnce(w2, false, kBudget, 1, &untiered);
        ASSERT_EQ(tiered.count(), kPrefix) << w.label();
        ASSERT_EQ(untiered.count(), kPrefix) << w.label();
        EXPECT_EQ(tiered.hash(), untiered.hash()) << w.label();
    }
}

TEST(Tiering, TierZeroAlwaysPromotedOrRetired)
{
    std::size_t tier0_installed = 0, promoted = 0;
    for (workload::Workload &w : workload::makeAllWorkloads()) {
        const RuntimeStats s = runOnce(w, true);
        for (const BundleStats &b : s.bundles) {
            if (b.tier != 0)
                continue;
            // No run ends serving fast-install code: an installed
            // tier-0 bundle was promoted, displaced/evicted, or retired
            // by the end-of-run sweep — never left resident.
            EXPECT_FALSE(b.residentAtEnd) << w.label();
            if (b.installedQuantum == BundleStats::kNever)
                continue;
            ++tier0_installed;
            EXPECT_TRUE(b.promoted() || b.evicted()) << w.label();
            if (b.promoted()) {
                ++promoted;
                EXPECT_GE(b.promotedQuantum, b.installedQuantum)
                    << w.label();
            }
        }
        EXPECT_EQ(s.installs == 0,
                  s.firstInstallQuantum[0] == BundleStats::kNever &&
                      s.firstInstallQuantum[1] == BundleStats::kNever)
            << w.label();
        ir::verifyOrDie(w.program, "workload program after run");
    }
    // The roster as a whole must exercise both halves of the lifecycle.
    EXPECT_GT(tier0_installed, 0u);
    EXPECT_GT(promoted, 0u);
}

TEST(Tiering, FirstInstallStrictlyEarlier)
{
    // The point of the fast tier: on every roster row where the
    // untiered run installs anything at all, the tiered run has a
    // bundle serving at a strictly earlier quantum.
    std::size_t rows_compared = 0;
    for (workload::Workload &w : workload::makeAllWorkloads()) {
        workload::Workload w2 = w;
        const RuntimeStats tiered = runOnce(w, true);
        const RuntimeStats untiered = runOnce(w2, false);
        const std::uint64_t ft = std::min(tiered.firstInstallQuantum[0],
                                          tiered.firstInstallQuantum[1]);
        const std::uint64_t fu = untiered.firstInstallQuantum[1];
        if (fu == BundleStats::kNever)
            continue;
        ++rows_compared;
        EXPECT_LT(ft, fu) << w.label();
        // And the head start comes from tier 0 itself, not a faster
        // tier-1 path.
        EXPECT_EQ(ft, tiered.firstInstallQuantum[0]) << w.label();
    }
    EXPECT_GT(rows_compared, 10u);
}

TEST(Tiering, NoTieringDisablesTierZero)
{
    workload::Workload w = workload::makeMcf("A");
    const RuntimeStats s = runOnce(w, false, 600'000);
    EXPECT_EQ(s.tier0Builds, 0u);
    EXPECT_EQ(s.tier0Installs, 0u);
    EXPECT_EQ(s.promotions, 0u);
    EXPECT_EQ(s.promotionRebuilds, 0u);
    EXPECT_EQ(s.tier0EndOfRunRetires, 0u);
    EXPECT_EQ(s.firstInstallQuantum[0], BundleStats::kNever);
    for (const BundleStats &b : s.bundles)
        EXPECT_EQ(b.tier, 1u);
    EXPECT_GT(s.installs, 0u);
}

TEST(Tiering, ReportByteIdenticalAcrossWorkerCounts)
{
    // The tiered pipeline adds a second in-flight job per phase; the
    // report must still be byte-identical for every worker count, in
    // both modes.
    for (const bool tiering : {true, false}) {
        workload::Workload w1 = workload::makeGo("A");
        workload::Workload w8 = workload::makeGo("A");
        const std::string t1 =
            toText(runOnce(w1, tiering, 600'000, 1), w1.label());
        const std::string t8 =
            toText(runOnce(w8, tiering, 600'000, 8), w8.label());
        EXPECT_EQ(t1, t8) << (tiering ? "tiered" : "untiered");
    }
}

} // namespace
