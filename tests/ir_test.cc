/**
 * @file
 * Unit tests for the IR: block/function/program invariants, layout
 * address assignment, the verifier, compaction, and printing.
 */

#include <gtest/gtest.h>

#include "ir/print.hh"
#include "ir/program.hh"
#include "ir/verify.hh"
#include "tests/helpers.hh"

namespace
{

using namespace vp;
using namespace vp::ir;

Instruction
ialu()
{
    Instruction i;
    i.op = Opcode::IAlu;
    i.dsts = {0};
    i.srcs = {1, 2};
    return i;
}

Instruction
condbr(BehaviorId id)
{
    Instruction i;
    i.op = Opcode::CondBr;
    i.srcs = {0};
    i.behavior = id;
    return i;
}

TEST(Instruction, OpcodePredicates)
{
    EXPECT_TRUE(isControl(Opcode::CondBr));
    EXPECT_TRUE(isControl(Opcode::Jump));
    EXPECT_TRUE(isControl(Opcode::Call));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::IAlu));
    EXPECT_TRUE(isMemory(Opcode::Load));
    EXPECT_TRUE(isMemory(Opcode::Store));
    EXPECT_FALSE(isMemory(Opcode::FMul));
}

TEST(Instruction, ToStringShowsOperands)
{
    Instruction i = ialu();
    const std::string s = i.toString();
    EXPECT_NE(s.find("ialu"), std::string::npos);
    EXPECT_NE(s.find("r0"), std::string::npos);
}

TEST(BasicBlockTest, TerminatorDetection)
{
    BasicBlock bb;
    EXPECT_EQ(bb.terminator(), nullptr);
    bb.insts.push_back(ialu());
    EXPECT_EQ(bb.terminator(), nullptr);
    bb.insts.push_back(condbr(1));
    ASSERT_NE(bb.terminator(), nullptr);
    EXPECT_TRUE(bb.endsInCondBr());
    EXPECT_FALSE(bb.endsInCall());
    EXPECT_FALSE(bb.endsInRet());
}

TEST(FunctionTest, AddBlockAssignsSequentialIds)
{
    Function fn(0, "f");
    EXPECT_EQ(fn.addBlock(), 0u);
    EXPECT_EQ(fn.addBlock(), 1u);
    EXPECT_EQ(fn.addBlock(), 2u);
    EXPECT_EQ(fn.numBlocks(), 3u);
    EXPECT_EQ(fn.layout().size(), 3u);
}

TEST(FunctionTest, NumInstsExcludesPseudo)
{
    Function fn(0, "f");
    const BlockId b = fn.addBlock();
    fn.setRegCount(4);
    fn.block(b).insts.push_back(ialu());
    Instruction p;
    p.op = Opcode::Nop;
    p.pseudo = true;
    fn.block(b).insts.push_back(p);
    EXPECT_EQ(fn.numInsts(), 1u);
}

TEST(ProgramTest, LayoutAssignsDisjointAddresses)
{
    test::DiamondLoop d = test::makeDiamondLoop();
    Program &prog = d.w.program;
    const Function &fn = prog.func(d.f);
    Addr prev_end = 0;
    for (BlockId b : fn.layout()) {
        const BasicBlock &bb = fn.block(b);
        EXPECT_NE(bb.addr, kInvalidAddr);
        EXPECT_GE(bb.addr, prev_end);
        prev_end = bb.addr + bb.insts.size() * kInstBytes;
    }
    EXPECT_EQ(prog.codeSize(), prog.numInsts() * kInstBytes);
}

TEST(ProgramTest, LayoutSkipsPseudoInsts)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b0 = prog.func(f).addBlock();
    const BlockId b1 = prog.func(f).addBlock();
    Instruction p;
    p.op = Opcode::Nop;
    p.pseudo = true;
    p.srcs = {1};
    prog.func(f).block(b0).insts.push_back(p);
    prog.func(f).block(b0).insts.push_back(ialu());
    prog.func(f).block(b0).fall = BlockRef{f, b1};
    Instruction r;
    r.op = Opcode::Ret;
    prog.func(f).block(b1).insts.push_back(r);
    prog.layout();
    // b0 holds exactly one real instruction -> b1 starts 4 bytes later.
    EXPECT_EQ(prog.func(f).block(b1).addr,
              prog.func(f).block(b0).addr + kInstBytes);
}

TEST(VerifyTest, AcceptsWellFormedWorkloads)
{
    test::TinyWorkload t = test::makeTiny();
    EXPECT_TRUE(verify(t.w.program).empty());
}

TEST(VerifyTest, RejectsCondBrWithoutTargets)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b = prog.func(f).addBlock();
    prog.func(f).block(b).insts.push_back(condbr(1));
    const auto errs = verify(prog);
    EXPECT_FALSE(errs.empty());
}

TEST(VerifyTest, RejectsControlNotLast)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b = prog.func(f).addBlock();
    Instruction r;
    r.op = Opcode::Ret;
    prog.func(f).block(b).insts.push_back(r);
    prog.func(f).block(b).insts.push_back(ialu());
    const auto errs = verify(prog);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs.front().find("not last"), std::string::npos);
}

TEST(VerifyTest, RejectsOutOfRangeRegister)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(2);
    const BlockId b = prog.func(f).addBlock();
    prog.func(f).block(b).insts.push_back(ialu()); // uses r1, r2
    Instruction r;
    r.op = Opcode::Ret;
    prog.func(f).block(b).insts.push_back(r);
    const auto errs = verify(prog);
    EXPECT_FALSE(errs.empty());
}

TEST(VerifyTest, RejectsDanglingBlockRef)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b = prog.func(f).addBlock();
    Instruction j;
    j.op = Opcode::Jump;
    prog.func(f).block(b).insts.push_back(j);
    prog.func(f).block(b).taken = BlockRef{f, 57};
    const auto errs = verify(prog);
    EXPECT_FALSE(errs.empty());
}

TEST(VerifyTest, RejectsCallWithoutCallee)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b = prog.func(f).addBlock();
    const BlockId c = prog.func(f).addBlock();
    Instruction call;
    call.op = Opcode::Call;
    prog.func(f).block(b).insts.push_back(call);
    prog.func(f).block(b).fall = BlockRef{f, c};
    Instruction r;
    r.op = Opcode::Ret;
    prog.func(f).block(c).insts.push_back(r);
    const auto errs = verify(prog);
    EXPECT_FALSE(errs.empty());
}

TEST(VerifyTest, AcceptsDeadHuskBlock)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(4);
    const BlockId b = prog.func(f).addBlock();
    Instruction r;
    r.op = Opcode::Ret;
    prog.func(f).block(b).insts.push_back(r);
    prog.func(f).addBlock(); // empty husk: no insts, no successors
    EXPECT_TRUE(verify(prog).empty());
}

TEST(CompactTest, RemapsArcsAndLayout)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    Function &fn = prog.func(f);
    fn.setRegCount(4);
    const BlockId b0 = fn.addBlock();
    const BlockId b1 = fn.addBlock(); // to be removed
    const BlockId b2 = fn.addBlock();
    Instruction j;
    j.op = Opcode::Jump;
    fn.block(b0).insts.push_back(j);
    fn.block(b0).taken = BlockRef{f, b2};
    fn.block(b1).fall = BlockRef{f, b2};
    Instruction r;
    r.op = Opcode::Ret;
    fn.block(b2).insts.push_back(r);

    std::vector<bool> keep{true, false, true};
    const auto remap = fn.compact(keep);
    EXPECT_EQ(remap[b0], 0u);
    EXPECT_EQ(remap[b1], kInvalidBlock);
    EXPECT_EQ(remap[b2], 1u);
    EXPECT_EQ(fn.numBlocks(), 2u);
    EXPECT_EQ(fn.block(0).taken.block, 1u);
    EXPECT_EQ(fn.layout().size(), 2u);
    EXPECT_TRUE(verify(prog).empty());
}

TEST(PrintTest, DumpsAllFunctions)
{
    test::TinyWorkload t = test::makeTiny();
    const std::string s = toString(t.w.program);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
    EXPECT_NE(s.find("main"), std::string::npos);
    EXPECT_NE(s.find("-> taken"), std::string::npos);
}

TEST(BlockRefTest, HashAndEquality)
{
    const BlockRef a{1, 2}, b{1, 2}, c{1, 3};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(std::hash<BlockRef>()(a), std::hash<BlockRef>()(b));
    EXPECT_FALSE(kNoBlockRef.valid());
    EXPECT_TRUE(a.valid());
}

} // namespace
