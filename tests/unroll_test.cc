/**
 * @file
 * Tests for package loop unrolling: structural correctness on directed
 * shapes (single-block and multi-block loops, threading of the back
 * edge, shared exits), eligibility rules (profile strength, multi-latch
 * loops, growth caps), and semantic preservation on real packages.
 */

#include <gtest/gtest.h>

#include <string>

#include "ir/cfg.hh"
#include "ir/verify.hh"
#include "opt/unroll.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::opt;

/** hdr -> body -> latch -(p)-> hdr | exit-ret; a 3-block natural loop. */
struct Loop3
{
    workload::Workload w;
    FuncId f = 0;
    BlockId pre = 0, hdr = 0, body = 0, latch = 0, out = 0;
};

Loop3
makeLoop3(double latch_prob = 0.9)
{
    Loop3 l;
    workload::ProgramBuilder b("unroll", 3);
    l.f = b.function("f", 16);
    l.pre = b.block(l.f);
    l.hdr = b.block(l.f);
    l.body = b.block(l.f);
    l.latch = b.block(l.f);
    l.out = b.block(l.f);
    b.entry(l.f, l.pre);
    b.compute(l.f, l.pre, 2);
    b.fallthrough(l.f, l.pre, l.hdr);
    b.compute(l.f, l.hdr, 3);
    b.fallthrough(l.f, l.hdr, l.body);
    b.compute(l.f, l.body, 3);
    b.fallthrough(l.f, l.body, l.latch);
    b.compute(l.f, l.latch, 2);
    b.condbr(l.f, l.latch, l.hdr, l.out, {latch_prob});
    b.compute(l.f, l.out, 1);
    b.ret(l.f, l.out);
    b.entryFunc(l.f);
    l.w = b.finish("unroll", "A",
                   workload::PhaseSchedule({{0, 1'000'000}}, false),
                   100'000);
    // Stamp the profile the way pruning would.
    l.w.program.func(l.f).block(l.latch).terminator()->profProb =
        latch_prob;
    return l;
}

TEST(Unroll, FactorTwoDuplicatesTheBody)
{
    Loop3 l = makeLoop3();
    Function &fn = l.w.program.func(l.f);
    const std::size_t before = fn.numBlocks();
    const UnrollStats st = unrollLoops(fn, 2);
    EXPECT_EQ(st.loopsUnrolled, 1u);
    EXPECT_EQ(st.blocksAdded, 3u); // hdr + body + latch copied once
    EXPECT_EQ(fn.numBlocks(), before + 3);
    l.w.program.layout();
    EXPECT_TRUE(verify(l.w.program).empty());

    // The original latch's back edge now enters the copy, and the copy's
    // latch closes at the original header.
    const BlockRef orig_back = fn.block(l.latch).taken;
    EXPECT_NE(orig_back.block, l.hdr);
    const auto back = backEdges(fn);
    ASSERT_EQ(back.size(), 1u); // still one loop, twice the period
    EXPECT_EQ(back[0].second, l.hdr);
}

TEST(Unroll, FactorFourAddsThreeCopies)
{
    Loop3 l = makeLoop3();
    Function &fn = l.w.program.func(l.f);
    const UnrollStats st = unrollLoops(fn, 4);
    EXPECT_EQ(st.blocksAdded, 9u);
    l.w.program.layout();
    EXPECT_TRUE(verify(l.w.program).empty());
}

TEST(Unroll, PreservesExecutionExactly)
{
    Loop3 l1 = makeLoop3();
    Loop3 l2 = makeLoop3();
    unrollLoops(l2.w.program.func(l2.f), 3);
    l2.w.program.layout();
    ASSERT_TRUE(verify(l2.w.program).empty());

    trace::ExecutionEngine e1(l1.w.program, l1.w);
    trace::ExecutionEngine e2(l2.w.program, l2.w);
    const auto s1 = e1.run(100'000);
    const auto s2 = e2.run(100'000);
    // Unrolling changes neither the instruction count nor the branch
    // outcomes (same BehaviorIds, same oracle stream).
    EXPECT_EQ(s1.dynInsts, s2.dynInsts);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
}

TEST(Unroll, WeakLatchIsNotUnrolled)
{
    Loop3 l = makeLoop3(0.5); // loops only half the time
    const UnrollStats st = unrollLoops(l.w.program.func(l.f), 2);
    EXPECT_EQ(st.loopsUnrolled, 0u);
}

TEST(Unroll, MissingProfileIsNotSpeculated)
{
    Loop3 l = makeLoop3();
    l.w.program.func(l.f).block(l.latch).terminator()->profProb = -1.0;
    const UnrollStats st = unrollLoops(l.w.program.func(l.f), 2);
    EXPECT_EQ(st.loopsUnrolled, 0u);
}

TEST(Unroll, GrowthCapRespected)
{
    Loop3 l = makeLoop3();
    const UnrollStats st =
        unrollLoops(l.w.program.func(l.f), 2, 0.75, 24, /*max growth*/ 2);
    EXPECT_EQ(st.loopsUnrolled, 0u); // would need 3 new blocks
}

TEST(Unroll, FactorOneIsANoop)
{
    Loop3 l = makeLoop3();
    const std::size_t before = l.w.program.func(l.f).numBlocks();
    const UnrollStats st = unrollLoops(l.w.program.func(l.f), 1);
    EXPECT_EQ(st.loopsUnrolled, 0u);
    EXPECT_EQ(l.w.program.func(l.f).numBlocks(), before);
}

TEST(Unroll, MultiLatchLoopsAreSkipped)
{
    // Two back edges to one header (a continue statement).
    workload::ProgramBuilder b("ml", 3);
    const FuncId f = b.function("f", 12);
    const BlockId pre = b.block(f), hdr = b.block(f), mid = b.block(f),
                  latch = b.block(f), out = b.block(f);
    b.entry(f, pre);
    b.compute(f, pre, 1);
    b.fallthrough(f, pre, hdr);
    b.compute(f, hdr, 2);
    b.condbr(f, hdr, mid, mid, {0.5});
    b.compute(f, mid, 2);
    const BehaviorId cont = b.condbr(f, mid, hdr, latch, {0.3}); // continue
    b.compute(f, latch, 2);
    b.condbr(f, latch, hdr, out, {0.85});
    b.compute(f, out, 1);
    b.ret(f, out);
    b.entryFunc(f);
    auto w = b.finish("ml", "A",
                      workload::PhaseSchedule({{0, 1'000'000}}, false),
                      10'000);
    (void)cont;
    Function &fn = w.program.func(f);
    for (auto &bb : fn.blocks()) {
        if (bb.endsInCondBr())
            bb.terminator()->profProb = 0.85;
    }
    const UnrollStats st = unrollLoops(fn, 2);
    EXPECT_EQ(st.loopsUnrolled, 0u);
}

// ------------------------------------------------------------- end to end

TEST(UnrollEndToEnd, PackagesStayCorrectAndNoSlower)
{
    workload::Workload w = workload::makeWorkload("132.ijpeg", "A");
    w.maxDynInsts = 800'000;

    auto run = [&](unsigned factor) {
        VpConfig cfg = VpConfig::variant(true, true);
        cfg.opt.unrollFactor = factor;
        VacuumPacker packer(w, cfg);
        const VpResult r = packer.run();
        EXPECT_TRUE(verify(r.packaged.program).empty());
        return measureSpeedup(w, r.packaged.program, cfg.machine)
            .speedup();
    };
    const double base = run(1);
    const double unrolled = run(4);
    // Unrolling must not break anything; on this loop-heavy workload it
    // should not lose more than noise.
    EXPECT_GT(unrolled, base - 0.02);
}

TEST(UnrollEndToEnd, OptimizedPackagesAreRunToRunDeterministic)
{
    // Regression: optimizePackages() sized its externally-referenced
    // mask before unrolling appended body copies, so merge/relayout
    // indexed past the end of a vector<bool> and read heap garbage —
    // unrolled packages differed from run to run (ASLR-dependent).
    // Within one process the garbage can still differ between
    // invocations, so two full pipeline runs must agree block for block.
    auto dump = [] {
        workload::Workload w = workload::makeWorkload("164.gzip", "A");
        w.maxDynInsts = 500'000;
        VpConfig cfg = VpConfig::variant(true, true);
        cfg.opt.unrollFactor = 2;
        VacuumPacker packer(w, cfg);
        const VpResult r = packer.run();
        std::string text;
        for (const auto &fn : r.packaged.program.functions()) {
            if (!fn.isPackage())
                continue;
            text += fn.name() + ":";
            for (const auto &bb : fn.blocks()) {
                text += " [";
                for (const auto &inst : bb.insts)
                    text += std::to_string(static_cast<int>(inst.op)) + ",";
                text += "]";
            }
        }
        return text;
    };
    EXPECT_EQ(dump(), dump());
}

TEST(UnrollEndToEnd, StreamPreservedOnRealPackage)
{
    workload::Workload w = workload::makeWorkload("164.gzip", "A");
    w.maxDynInsts = 500'000;
    VpConfig cfg = VpConfig::variant(true, true);
    cfg.opt.unrollFactor = 3;
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    EXPECT_GT(r.optStats.loopsUnrolled, 0u);

    trace::ExecutionEngine e1(w.program, w);
    const auto s1 = e1.run(w.maxDynInsts);
    trace::ExecutionEngine e2(r.packaged.program, w);
    const auto s2 = e2.run(w.maxDynInsts * 2, s1.dynBranches);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
}

} // namespace
