#include "tests/helpers.hh"

namespace vp::test
{

using namespace ir;
using namespace workload;

TinyWorkload
makeTiny(std::uint64_t seed, std::uint64_t budget)
{
    TinyWorkload t;
    ProgramBuilder b("tiny", seed);

    auto worker = [&](const std::string &name,
                      std::vector<double> iters_by_phase,
                      std::vector<double> d1, std::vector<double> d2) {
        const FuncId f = b.function(name, 20);
        const BlockId pro = b.block(f);
        b.entry(f, pro);
        b.compute(f, pro, 3);
        const BlockId head = b.block(f);
        b.fallthrough(f, pro, head);
        b.compute(f, head, 4);
        const BlockId t1 = b.block(f), f1 = b.block(f), j1 = b.block(f);
        b.condbr(f, head, t1, f1, std::move(d1));
        b.compute(f, t1, 4);
        b.jump(f, t1, j1);
        b.compute(f, f1, 4);
        b.fallthrough(f, f1, j1);
        b.compute(f, j1, 4);
        const BlockId t2 = b.block(f), f2 = b.block(f), j2 = b.block(f);
        b.condbr(f, j1, t2, f2, std::move(d2));
        b.compute(f, t2, 3);
        b.jump(f, t2, j2);
        b.compute(f, f2, 3);
        b.fallthrough(f, f2, j2);
        b.compute(f, j2, 3);
        const BlockId epi = b.block(f);
        std::vector<double> back;
        for (double n : iters_by_phase)
            back.push_back((n - 1.0) / n);
        b.condbr(f, j2, head, epi, std::move(back));
        b.compute(f, epi, 2);
        b.ret(f, epi);
        return f;
    };

    t.alpha = worker("alpha", {8.0, 2.0}, {0.85, 0.3}, {0.2, 0.6});
    t.beta = worker("beta", {2.0, 8.0}, {0.4, 0.9}, {0.5, 0.15});

    // Dispatcher.
    t.loop = b.function("loop", 20);
    {
        const FuncId f = t.loop;
        const BlockId pro = b.block(f);
        b.entry(f, pro);
        b.compute(f, pro, 3);
        const BlockId head = b.block(f);
        b.fallthrough(f, pro, head);
        b.compute(f, head, 3);
        const BlockId ca = b.block(f), cb = b.block(f);
        const BlockId latch = b.block(f);
        t.dispatchBr = b.condbr(f, head, ca, cb, {0.9, 0.1});
        b.compute(f, ca, 2);
        b.call(f, ca, t.alpha, latch);
        b.compute(f, cb, 2);
        b.call(f, cb, t.beta, latch);
        b.compute(f, latch, 3);
        const BlockId epi = b.block(f);
        b.condbr(f, latch, head, epi, {0.996, 0.996});
        b.compute(f, epi, 2);
        b.ret(f, epi);
    }

    // Main.
    t.main = b.function("main", 16);
    {
        const FuncId f = t.main;
        const BlockId pro = b.block(f);
        b.entry(f, pro);
        b.compute(f, pro, 3);
        const BlockId head = b.block(f);
        b.fallthrough(f, pro, head);
        b.compute(f, head, 2);
        const BlockId after = b.block(f);
        b.call(f, head, t.loop, after);
        const BlockId epi = b.block(f);
        b.condbr(f, after, head, epi, {0.999, 0.999});
        b.compute(f, epi, 1);
        b.ret(f, epi);
        b.entryFunc(f);
    }

    t.w = b.finish("tiny", "A",
                   PhaseSchedule({{0, 20'000}, {1, 20'000}}, true), budget);
    return t;
}

DiamondLoop
makeDiamondLoop(std::vector<double> cond_probs,
                std::vector<double> latch_iters, std::uint64_t budget)
{
    DiamondLoop d;
    ProgramBuilder b("diamond", 7);
    d.f = b.function("dmain", 16);
    d.b0 = b.block(d.f);
    d.b1 = b.block(d.f);
    d.b2 = b.block(d.f);
    d.b3 = b.block(d.f);
    d.b4 = b.block(d.f);
    d.b5 = b.block(d.f);
    b.entry(d.f, d.b0);
    b.compute(d.f, d.b0, 3);
    b.fallthrough(d.f, d.b0, d.b1);
    b.compute(d.f, d.b1, 3);
    d.condBr = b.condbr(d.f, d.b1, d.b2, d.b3, std::move(cond_probs));
    b.compute(d.f, d.b2, 3);
    b.jump(d.f, d.b2, d.b4);
    b.compute(d.f, d.b3, 3);
    b.fallthrough(d.f, d.b3, d.b4);
    b.compute(d.f, d.b4, 3);
    std::vector<double> back;
    for (double n : latch_iters)
        back.push_back((n - 1.0) / n);
    d.latchBr = b.condbr(d.f, d.b4, d.b1, d.b5, std::move(back));
    b.compute(d.f, d.b5, 2);
    b.ret(d.f, d.b5);
    b.entryFunc(d.f);

    d.w = b.finish("diamond", "A",
                   workload::PhaseSchedule({{0, 1'000'000}}, false), budget);
    return d;
}

/**
 * Reconstruction of the paper's Figure 3 example.
 *
 * Function A:
 *   A1 (entry) -> A2
 *   A2: condbr  taken->A7 (cold path), fall->A3      [in BBB: 400/4]
 *   A3: -> A4
 *   A4: condbr  taken->A5, fall->A6                  [in BBB: 400/200]
 *   A5: call B, returns to A8
 *   A6: jump A8
 *   A7: jump A8                                       (cold)
 *   A8: -> A9
 *   A9: condbr  taken->A2 (loop), fall->A10          [in BBB: 396/392]
 *   A10: ret                                          (cold)
 *
 * Function B:
 *   B1 (entry) -> B2
 *   B2: condbr  taken->B5, fall->B4                   (missing from BBB)
 *   B4: condbr  taken->B6, fall->B5                  [in BBB: 350/340]
 *   B5: ret                                           (cold path)
 *   B6: ret                                           (hot epilogue)
 */
Figure3
makeFigure3()
{
    Figure3 fig;
    workload::ProgramBuilder b("figure3", 11);

    fig.B = b.function("B", 12);
    fig.b1 = b.block(fig.B);
    fig.b2 = b.block(fig.B);
    fig.b4 = b.block(fig.B);
    fig.b5 = b.block(fig.B);
    fig.b6 = b.block(fig.B);
    b.entry(fig.B, fig.b1);
    b.compute(fig.B, fig.b1, 2);
    b.fallthrough(fig.B, fig.b1, fig.b2);
    b.compute(fig.B, fig.b2, 2);
    fig.brB2 = b.condbr(fig.B, fig.b2, fig.b5, fig.b4, {0.03});
    b.compute(fig.B, fig.b4, 2);
    fig.brB4 = b.condbr(fig.B, fig.b4, fig.b6, fig.b5, {0.97});
    b.compute(fig.B, fig.b5, 2);
    b.ret(fig.B, fig.b5);
    b.compute(fig.B, fig.b6, 2);
    b.ret(fig.B, fig.b6);

    fig.A = b.function("A", 12);
    fig.a1 = b.block(fig.A);
    fig.a2 = b.block(fig.A);
    fig.a3 = b.block(fig.A);
    fig.a4 = b.block(fig.A);
    fig.a5 = b.block(fig.A);
    fig.a6 = b.block(fig.A);
    fig.a7 = b.block(fig.A);
    fig.a8 = b.block(fig.A);
    fig.a9 = b.block(fig.A);
    fig.a10 = b.block(fig.A);
    b.entry(fig.A, fig.a1);
    b.compute(fig.A, fig.a1, 2);
    b.fallthrough(fig.A, fig.a1, fig.a2);
    b.compute(fig.A, fig.a2, 2);
    fig.brA2 = b.condbr(fig.A, fig.a2, fig.a7, fig.a3, {0.01});
    b.compute(fig.A, fig.a3, 2);
    b.fallthrough(fig.A, fig.a3, fig.a4);
    b.compute(fig.A, fig.a4, 2);
    fig.brA4 = b.condbr(fig.A, fig.a4, fig.a5, fig.a6, {0.5});
    b.compute(fig.A, fig.a5, 2);
    b.call(fig.A, fig.a5, fig.B, fig.a8);
    b.compute(fig.A, fig.a6, 2);
    b.jump(fig.A, fig.a6, fig.a8);
    b.compute(fig.A, fig.a7, 2);
    b.jump(fig.A, fig.a7, fig.a8);
    b.compute(fig.A, fig.a8, 2);
    b.fallthrough(fig.A, fig.a8, fig.a9);
    b.compute(fig.A, fig.a9, 2);
    fig.brA9 = b.condbr(fig.A, fig.a9, fig.a2, fig.a10, {0.99});
    b.compute(fig.A, fig.a10, 2);
    b.ret(fig.A, fig.a10);
    b.entryFunc(fig.A);

    fig.w = b.finish("figure3", "A",
                     workload::PhaseSchedule({{0, 1'000'000}}, false),
                     200'000);
    return fig;
}

/** The 4-entry BBB snapshot of Figure 3(a): A2, A4, A9, B4. */
hsd::HotSpotRecord
figure3Record(const Figure3 &fig)
{
    hsd::HotSpotRecord rec;
    auto add = [&](BehaviorId id, std::uint32_t exec, std::uint32_t taken) {
        hsd::HotBranch hb;
        hb.behavior = id;
        hb.exec = exec;
        hb.taken = taken;
        rec.branches.push_back(hb);
    };
    add(fig.brA2, 400, 4);   // strongly not-taken
    add(fig.brA4, 400, 200); // unbiased
    add(fig.brA9, 396, 392); // strongly taken
    add(fig.brB4, 350, 340); // strongly taken
    return rec;
}


} // namespace vp::test
