/**
 * @file
 * Tests for the parallel evaluation harness: the worker thread pool, the
 * memoized baseline-run cache, the ordered compute/emit driver, and the
 * end-to-end guarantee the bench tables rely on — a parallel roster
 * sweep emits byte-identical rows to the serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "support/thread_pool.hh"
#include "tests/helpers.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "vp/run_cache.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ZeroRequestsDefaultThreads)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, SubmitRunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(), [&](std::size_t i) {
        visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroIsNoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "called for n=0"; });
    pool.wait();
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The pool stays usable after an exception has been consumed.
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
}

// ------------------------------------------------------------------ RunCache

TEST(RunCache, BaselineTimingHitsAfterFirstMiss)
{
    auto &cache = RunCache::instance();
    cache.clear();
    const test::TinyWorkload t = test::makeTiny(42, 60'000);
    const sim::MachineConfig mc;

    const std::uint64_t h0 = cache.hits(), m0 = cache.misses();
    const auto first = cache.baselineTiming(t.w, mc);
    EXPECT_EQ(cache.hits(), h0);
    EXPECT_EQ(cache.misses(), m0 + 1);

    const auto second = cache.baselineTiming(t.w, mc);
    EXPECT_EQ(cache.hits(), h0 + 1);
    EXPECT_EQ(cache.misses(), m0 + 1);
    EXPECT_EQ(first.get(), second.get()); // shared, not re-simulated
    EXPECT_GT(first->run.dynInsts, 0u);
    EXPECT_GT(first->core.cycles, 0u);
}

TEST(RunCache, MachineConfigIsPartOfTheKey)
{
    auto &cache = RunCache::instance();
    cache.clear();
    const test::TinyWorkload t = test::makeTiny(42, 60'000);

    sim::MachineConfig narrow;
    narrow.issueWidth = 1;
    const auto wide_run = cache.baselineTiming(t.w, sim::MachineConfig());
    const std::uint64_t m0 = cache.misses();
    const auto narrow_run = cache.baselineTiming(t.w, narrow);
    EXPECT_EQ(cache.misses(), m0 + 1) << "distinct machine must re-simulate";
    EXPECT_NE(wide_run.get(), narrow_run.get());
    EXPECT_GT(narrow_run->core.cycles, wide_run->core.cycles);
}

TEST(RunCache, BranchProfileHitsAfterFirstMiss)
{
    auto &cache = RunCache::instance();
    cache.clear();
    const test::TinyWorkload t = test::makeTiny(42, 60'000);

    const std::uint64_t h0 = cache.hits(), m0 = cache.misses();
    const auto first = cache.branchProfile(t.w);
    const auto second = cache.branchProfile(t.w);
    EXPECT_EQ(cache.misses(), m0 + 1);
    EXPECT_EQ(cache.hits(), h0 + 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_GT(first->total, 0u);
    EXPECT_FALSE(first->counts.empty());
}

TEST(RunCache, FingerprintSeparatesWorkloadsSharingAName)
{
    // Same builder, same name/input — different seed and budget. A cache
    // keyed on names alone would alias these.
    const test::TinyWorkload a = test::makeTiny(42, 60'000);
    const test::TinyWorkload b = test::makeTiny(43, 60'000);
    const test::TinyWorkload c = test::makeTiny(42, 70'000);
    EXPECT_NE(RunCache::fingerprint(a.w), RunCache::fingerprint(b.w));
    EXPECT_NE(RunCache::fingerprint(a.w), RunCache::fingerprint(c.w));

    const test::TinyWorkload a2 = test::makeTiny(42, 60'000);
    EXPECT_EQ(RunCache::fingerprint(a.w), RunCache::fingerprint(a2.w));
}

TEST(RunCache, ClearForcesResimulation)
{
    auto &cache = RunCache::instance();
    cache.clear();
    const test::TinyWorkload t = test::makeTiny(42, 60'000);
    const sim::MachineConfig mc;

    const auto first = cache.baselineTiming(t.w, mc);
    cache.clear();
    const std::uint64_t m0 = cache.misses();
    const auto second = cache.baselineTiming(t.w, mc);
    EXPECT_EQ(cache.misses(), m0 + 1);
    // Identical inputs: the recomputed entry carries identical results.
    EXPECT_EQ(first->run.dynInsts, second->run.dynInsts);
    EXPECT_EQ(first->core.cycles, second->core.cycles);
}

TEST(RunCache, ConcurrentRequestsSimulateOnce)
{
    auto &cache = RunCache::instance();
    cache.clear();
    const test::TinyWorkload t = test::makeTiny(42, 60'000);
    const sim::MachineConfig mc;

    const std::uint64_t m0 = cache.misses();
    ThreadPool pool(4);
    std::vector<std::shared_ptr<const BaselineTiming>> got(8);
    pool.parallelFor(got.size(), [&](std::size_t i) {
        got[i] = cache.baselineTiming(t.w, mc);
    });
    EXPECT_EQ(cache.misses(), m0 + 1) << "one simulation for 8 requests";
    for (const auto &p : got)
        EXPECT_EQ(p.get(), got[0].get());
}

// ----------------------------------------------------------------- ordering

TEST(RunOrdered, EmitsInIndexOrderDespiteCompletionOrder)
{
    // Early indices sleep longest, so completion order is roughly
    // reversed; emission order must stay 0..n-1.
    const std::size_t n = 12;
    std::vector<std::size_t> emitted;
    bench::runOrdered(
        4, n,
        [&](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2 * (n - i)));
        },
        [&](std::size_t i) { emitted.push_back(i); });
    ASSERT_EQ(emitted.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(emitted[i], i);
}

TEST(RunOrdered, ComputeExceptionSkipsItsEmitAndRethrows)
{
    std::vector<std::size_t> emitted;
    EXPECT_THROW(
        bench::runOrdered(
            3, 5,
            [&](std::size_t i) {
                if (i == 2)
                    throw std::runtime_error("item 2 failed");
            },
            [&](std::size_t i) { emitted.push_back(i); }),
        std::runtime_error);
    EXPECT_EQ(emitted, (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(RunOrdered, SerialPathMatchesParallelPath)
{
    auto run = [](unsigned threads) {
        std::vector<int> out;
        bench::runOrdered(
            threads, 20, [](std::size_t) {},
            [&](std::size_t i) { out.push_back(static_cast<int>(i) * 3); });
        return out;
    };
    EXPECT_EQ(run(1), run(4));
}

// -------------------------------------------------------------- determinism

/** One bench-style row: full pipeline + coverage + speedup, formatted. */
std::string
benchRow(workload::Workload &w)
{
    w.maxDynInsts = 120'000; // trimmed budget keeps the sweep fast
    VacuumPacker packer(w, VpConfig::variant(true, true));
    const VpResult r = packer.run();
    const auto cov = measureCoverage(w, r.packaged.program);
    const auto sp = measureSpeedup(w, r.packaged.program,
                                   packer.config().machine);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s cov=%.6f sp=%.6f pkgs=%zu det=%zu",
                  bench::rowLabel(w).c_str(), cov.packageCoverage(),
                  sp.speedup(), r.packaged.packages.size(),
                  r.records.size());
    return std::string(buf);
}

TEST(Determinism, ParallelRosterSweepMatchesSerial)
{
    // The acceptance bar for the harness: identical emitted rows, in
    // identical order, for any thread count. The cache is cleared before
    // each pass so the parallel leg actually simulates concurrently.
    auto sweep = [](unsigned threads) {
        RunCache::instance().clear();
        std::vector<std::string> rows;
        bench::forEachWorkload(
            threads, [](workload::Workload &w) { return benchRow(w); },
            [&](const workload::Workload &, const std::string &row) {
                rows.push_back(row);
            });
        return rows;
    };

    const std::vector<std::string> serial = sweep(1);
    const std::vector<std::string> parallel = sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), workload::makeAllWorkloads().size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "row " << i;
}

TEST(Determinism, ForEachItemPreservesListOrder)
{
    struct Item
    {
        int id;
    };
    const std::vector<Item> items = {{5}, {1}, {9}, {3}};
    std::vector<int> seen;
    bench::forEachItem(
        3, items, [](const Item &it) { return it.id * 10; },
        [&](const Item &it, int r) {
            EXPECT_EQ(r, it.id * 10);
            seen.push_back(it.id);
        });
    EXPECT_EQ(seen, (std::vector<int>{5, 1, 9, 3}));
}

} // namespace
