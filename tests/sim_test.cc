/**
 * @file
 * Timing-model tests: cache hit/miss/LRU behavior, gshare learning, BTB,
 * RAS, and directed EpicCore properties (dependence stalls, issue width,
 * mispredict penalties, I-cache effects).
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/machine.hh"
#include "opt/schedule.hh"
#include "sim/predictor.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::sim;

// ------------------------------------------------------------------- cache

TEST(CacheTest, HitAfterMiss)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.accesses(), 4u);
}

TEST(CacheTest, LruEviction)
{
    // 2-way, 8 sets of 64B lines: addresses 0, 1024, 2048 share set 0.
    Cache c(1024, 2, 64);
    c.access(0);
    c.access(1024);
    c.access(0);      // 0 is MRU
    c.access(2048);   // evicts 1024 (LRU)
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1024));
    EXPECT_TRUE(c.probe(2048));
}

TEST(CacheTest, ProbeDoesNotAllocate)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(CacheTest, ResetClears)
{
    Cache c(1024, 2, 64);
    c.access(0x40);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(CacheTest, Table2Geometry)
{
    const MachineConfig mc;
    Cache l1d(mc.l1dBytes, mc.l1Assoc, mc.lineBytes);
    EXPECT_EQ(l1d.numSets(), 64u * 1024 / (4 * 64));
}

// -------------------------------------------------------------- predictors

TEST(GshareTest, LearnsStrongBias)
{
    Gshare g(10);
    const Addr pc = 0x4000;
    for (int i = 0; i < 50; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.predict(pc));
}

TEST(GshareTest, TracksAlternation)
{
    // With global history, a strict alternation becomes predictable.
    Gshare g(10);
    const Addr pc = 0x4000;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        correct += (g.predict(pc) == actual) ? 1 : 0;
        g.update(pc, actual);
    }
    // After warmup the pattern should be learned nearly perfectly.
    EXPECT_GT(correct, 300);
}

TEST(BtbTest, StoresAndEvicts)
{
    Btb btb(16);
    EXPECT_EQ(btb.lookup(0x100), kInvalidAddr);
    btb.update(0x100, 0x2000);
    EXPECT_EQ(btb.lookup(0x100), 0x2000u);
    // Aliasing pc (same index, 16 entries * 4B) evicts.
    btb.update(0x100 + 16 * 4, 0x3000);
    EXPECT_EQ(btb.lookup(0x100), kInvalidAddr);
}

TEST(RasTest, LifoOrder)
{
    Ras ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), kInvalidAddr);
}

TEST(RasTest, OverflowWrapsLikeHardware)
{
    Ras ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites 0x1
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), kInvalidAddr);
}

// -------------------------------------------------------------------- core

/** Drive the core directly with a synthetic retired stream. */
struct CoreDriver
{
    explicit CoreDriver(const Program &prog, MachineConfig mc = {})
        : core(prog, mc)
    {
    }

    void
    retire(const Instruction &inst, Addr pc, Addr next_pc, BlockRef block,
           std::uint64_t mem = 0, bool taken = false)
    {
        trace::RetiredInst ri;
        ri.inst = &inst;
        ri.pc = pc;
        ri.nextPc = next_pc;
        ri.block = block;
        ri.memAddr = mem;
        ri.branchTaken = taken;
        core.onRetire(ri);
    }

    EpicCore core;
};

Program
oneFuncProgram(RegId regs = 16)
{
    Program prog("p");
    const FuncId f = prog.addFunction("f");
    prog.func(f).setRegCount(regs);
    prog.func(f).addBlock();
    return prog;
}

TEST(CoreTest, IndependentOpsPackIntoOneCycle)
{
    Program prog = oneFuncProgram();
    CoreDriver d(prog);
    Instruction i;
    i.op = Opcode::IAlu;
    i.dsts = {1};
    i.srcs = {0, 0};
    Addr pc = 0x1000;
    for (int k = 0; k < 5; ++k) {
        i.dsts = {static_cast<RegId>(1 + k)};
        d.retire(i, pc, pc + 4, {0, 0});
        pc += 4;
    }
    // One issue group, plus the compulsory I-fetch miss up front.
    const MachineConfig mc;
    EXPECT_EQ(d.core.stats().cycles, 1u + mc.latMemory);
    EXPECT_EQ(d.core.stats().fetchStallCycles, mc.latMemory);
}

TEST(CoreTest, RawChainStallsOneCyclePerOp)
{
    Program prog = oneFuncProgram();
    CoreDriver d(prog);
    Addr pc = 0x1000;
    Instruction i;
    i.op = Opcode::IAlu;
    for (int k = 1; k <= 4; ++k) {
        i.dsts = {static_cast<RegId>(k + 1)};
        i.srcs = {static_cast<RegId>(k), static_cast<RegId>(k)};
        d.retire(i, pc, pc + 4, {0, 0});
        pc += 4;
    }
    // Serial chain: one op per cycle (after the compulsory fetch miss).
    const MachineConfig mc;
    EXPECT_EQ(d.core.stats().cycles, 4u + mc.latMemory);
    EXPECT_GT(d.core.stats().dataStallCycles, 0u);
}

TEST(CoreTest, FMulLatencyDelaysConsumer)
{
    Program prog = oneFuncProgram();
    const MachineConfig mc;
    CoreDriver d(prog, mc);
    Instruction m;
    m.op = Opcode::FMul;
    m.dsts = {1};
    m.srcs = {0, 0};
    d.retire(m, 0x1000, 0x1004, {0, 0});
    Instruction u;
    u.op = Opcode::IAlu;
    u.dsts = {2};
    u.srcs = {1, 1};
    d.retire(u, 0x1004, 0x1008, {0, 0});
    EXPECT_GE(d.core.stats().cycles, mc.latFMul + 1);
}

TEST(CoreTest, MispredictCostsResolutionPenalty)
{
    Program prog = oneFuncProgram();
    const MachineConfig mc;

    // Alternate in an unpredictable-ish way first, then compare against a
    // perfectly biased stream of the same length.
    auto run = [&](double taken_prob) {
        CoreDriver d(prog, mc);
        Instruction br;
        br.op = Opcode::CondBr;
        br.srcs = {0};
        br.behavior = 1;
        Rng rng(7);
        // Fixed pc and targets (both in one warm line) so prediction is
        // the only variable between runs.
        for (int k = 0; k < 400; ++k) {
            const bool taken = rng.chance(taken_prob);
            d.retire(br, 0x1000, taken ? 0x1040 : 0x1044, {0, 0}, 0,
                     taken);
        }
        return d.core.stats();
    };
    const CoreStats biased = run(1.0);
    const CoreStats random = run(0.5);
    EXPECT_GT(random.branchMispredicts, biased.branchMispredicts + 50);
    EXPECT_GT(random.cycles, biased.cycles);
}

TEST(CoreTest, RasPredictsMatchingReturns)
{
    Program prog = oneFuncProgram();
    CoreDriver d(prog);
    Instruction call;
    call.op = Opcode::Call;
    Instruction ret;
    ret.op = Opcode::Ret;

    trace::RetiredInst ri;
    ri.inst = &call;
    ri.pc = 0x1000;
    ri.nextPc = 0x5000;
    ri.retAddr = 0x1004;
    ri.block = {0, 0};
    d.core.onRetire(ri);

    ri.inst = &ret;
    ri.pc = 0x5000;
    ri.nextPc = 0x1004; // matches the RAS
    ri.retAddr = kInvalidAddr;
    d.core.onRetire(ri);
    EXPECT_EQ(d.core.stats().rasMispredicts, 0u);

    // A second return with nothing on the stack mispredicts.
    ri.pc = 0x1004;
    ri.nextPc = 0x9000;
    d.core.onRetire(ri);
    EXPECT_EQ(d.core.stats().rasMispredicts, 1u);
}

TEST(CoreTest, ColdICacheLinesStallFetch)
{
    Program prog = oneFuncProgram();
    CoreDriver d(prog);
    Instruction i;
    i.op = Opcode::IAlu;
    i.dsts = {1};
    i.srcs = {0, 0};
    // Touch 8 distinct lines: 8 compulsory misses.
    for (int k = 0; k < 8; ++k)
        d.retire(i, 0x1000 + k * 64, 0x1000 + k * 64 + 4, {0, 0});
    EXPECT_EQ(d.core.stats().l1iMisses, 8u);
    EXPECT_GT(d.core.stats().fetchStallCycles, 0u);
}

TEST(CoreTest, LoadMissesWalkHierarchy)
{
    Program prog = oneFuncProgram();
    const MachineConfig mc;
    CoreDriver d(prog, mc);
    Instruction ld;
    ld.op = Opcode::Load;
    ld.dsts = {1};
    ld.srcs = {0};
    ld.behavior = 1;
    // Two loads to the same line: first misses L1+L2, second hits L1.
    d.retire(ld, 0x1000, 0x1004, {0, 0}, 0x8000);
    d.retire(ld, 0x1004, 0x1008, {0, 0}, 0x8008);
    EXPECT_EQ(d.core.stats().l1dMisses, 1u);
    // Two L2 misses: the compulsory instruction fetch plus the data line.
    EXPECT_EQ(d.core.stats().l2Misses, 2u);
}

// ------------------------------------------------- end-to-end timing runs

TEST(CoreEndToEnd, CyclesScaleWithInstructions)
{
    test::TinyWorkload t = test::makeTiny(42, 100'000);
    trace::ExecutionEngine engine(t.w.program, t.w);
    EpicCore core(t.w.program);
    engine.addSink(&core);
    const auto run = engine.run(100'000);
    const auto st = core.stats();
    EXPECT_EQ(st.insts, run.dynInsts);
    // An 8-wide in-order core on branchy code: IPC in a sane band.
    EXPECT_GT(st.ipc(), 0.2);
    EXPECT_LT(st.ipc(), 8.0);
    EXPECT_GT(st.branches, 0u);
}

TEST(CoreEndToEnd, DeterministicCycles)
{
    test::TinyWorkload t = test::makeTiny(42, 80'000);
    auto run_once = [&]() {
        test::TinyWorkload w = test::makeTiny(42, 80'000);
        trace::ExecutionEngine engine(w.w.program, w.w);
        EpicCore core(w.w.program);
        engine.addSink(&core);
        engine.run(80'000);
        return core.stats().cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CoreEndToEnd, ScheduledCodeIsNotSlower)
{
    // Rescheduling packages may only help an in-order pipe (same
    // instruction multiset, dependence-aware order).
    test::TinyWorkload t1 = test::makeTiny(42, 150'000);
    test::TinyWorkload t2 = test::makeTiny(42, 150'000);
    for (auto &fn : t2.w.program.functions())
        vp::opt::scheduleFunction(fn, MachineConfig{});
    t2.w.program.layout();

    auto cycles = [](test::TinyWorkload &t) {
        trace::ExecutionEngine engine(t.w.program, t.w);
        EpicCore core(t.w.program);
        engine.addSink(&core);
        engine.run(150'000);
        return core.stats().cycles;
    };
    const auto c1 = cycles(t1);
    const auto c2 = cycles(t2);
    // Allow a tiny tolerance: scheduling is per-block greedy.
    EXPECT_LE(c2, c1 + c1 / 50);
}

TEST(CoreTest, LoadBufferFullStallsIssue)
{
    Program prog = oneFuncProgram();
    MachineConfig mc;
    mc.ldStBufEntries = 2; // tiny buffer to force occupancy stalls
    CoreDriver d(prog, mc);
    Instruction ld;
    ld.op = Opcode::Load;
    ld.dsts = {1};
    ld.srcs = {0};
    ld.behavior = 1;
    // Independent loads to distinct cold lines: every one misses to
    // memory (~80 cycles); with 2 buffer slots the third must wait.
    Addr pc = 0x1000;
    for (int k = 0; k < 6; ++k) {
        ld.dsts = {static_cast<RegId>(1 + k)};
        d.retire(ld, pc, pc + 4, {0, 0}, 0x100000 + k * 4096);
        pc += 4;
    }
    EXPECT_GT(d.core.stats().ldStBufStallCycles, 0u);
}

TEST(CoreTest, LargeBufferDoesNotStall)
{
    Program prog = oneFuncProgram();
    const MachineConfig mc; // 8 entries
    CoreDriver d(prog, mc);
    Instruction ld;
    ld.op = Opcode::Load;
    ld.srcs = {0};
    ld.behavior = 1;
    Addr pc = 0x1000;
    for (int k = 0; k < 6; ++k) {
        ld.dsts = {static_cast<RegId>(1 + k)};
        d.retire(ld, pc, pc + 4, {0, 0}, 0x100000 + k * 4096);
        pc += 4;
    }
    EXPECT_EQ(d.core.stats().ldStBufStallCycles, 0u);
}

TEST(CoreTest, MispredictsPolluteTheInstructionCache)
{
    Program prog = oneFuncProgram();
    const MachineConfig mc;
    CoreDriver d(prog, mc);
    Instruction br;
    br.op = Opcode::CondBr;
    br.srcs = {0};
    br.behavior = 1;
    // An unpredictable branch: every mispredict triggers wrong-path
    // fetches.
    Rng rng(11);
    for (int k = 0; k < 200; ++k) {
        const bool taken = rng.chance(0.5);
        d.retire(br, 0x1000, taken ? 0x1040 : 0x1044, {0, 0}, 0, taken);
    }
    const auto st = d.core.stats();
    EXPECT_GT(st.branchMispredicts, 20u);
    EXPECT_GT(st.wrongPathFetches, st.branchMispredicts);
}

TEST(MachineConfigTest, Table2Defaults)
{
    const MachineConfig mc;
    EXPECT_EQ(mc.issueWidth, 8u);
    EXPECT_EQ(mc.numIAlu, 5u);
    EXPECT_EQ(mc.numFp, 3u);
    EXPECT_EQ(mc.numMem, 3u);
    EXPECT_EQ(mc.numBranch, 3u);
    EXPECT_EQ(mc.branchResolution, 7u);
    EXPECT_EQ(mc.gshareHistoryBits, 10u);
    EXPECT_EQ(mc.btbEntries, 1024u);
    EXPECT_EQ(mc.rasEntries, 32u);
    EXPECT_EQ(mc.l1dBytes, 64u * 1024);
    EXPECT_EQ(mc.l1iBytes, 512u * 1024);
    EXPECT_EQ(mc.l2Bytes, 64u * 1024);
    EXPECT_EQ(mc.ldStBufEntries, 8u);
}

TEST(FuClassTest, MappingMatchesPaperUnits)
{
    EXPECT_EQ(fuClassOf(Opcode::IAlu), FuClass::IAlu);
    EXPECT_EQ(fuClassOf(Opcode::FAlu), FuClass::Fp);
    EXPECT_EQ(fuClassOf(Opcode::FMul), FuClass::Fp);
    EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::Store), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::CondBr), FuClass::Branch);
    EXPECT_EQ(fuClassOf(Opcode::Ret), FuClass::Branch);
}

} // namespace
