/**
 * @file
 * Overlapping-entry coalescing: split-phase detections (bias-flip
 * variants of one working set, reported through a deep call chain) must
 * be unioned into one merged bundle instead of displacing between rival
 * fragment bundles. Covers the controller policy end-to-end on a
 * synthetic flip-variant workload — merges fire, fragments retire,
 * coverage beats --no-merge, the logical instruction stream and the
 * report text are invariant across merge mode and worker count — plus
 * the unit seams: bias-agnostic overlap, flip counting, record union,
 * phase keys, superset lookup, and quarantine-by-subsumption.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hsd/filter.hh"
#include "hsd/record.hh"
#include "runtime/bundle.hh"
#include "runtime/controller.hh"
#include "runtime/package_cache.hh"
#include "runtime/stats.hh"
#include "workload/benchmarks.hh"
#include "workload/builder.hh"

namespace
{

using namespace vp;
using namespace vp::runtime;

/**
 * A phase whose detections split into bias-flip variants: main drives a
 * call chain (main -> f -> g) whose leaf runs a chain of diamonds.
 * Half the diamond branches keep one bias in both phases (the shared
 * skeleton), half flip from taken-biased in phase 0 to not-taken-biased
 * in phase 1. Both variants execute the *same* branch set, so a
 * re-detection of variant B loosely matches variant A's cache entry
 * (missing fraction 0, flips within the loose slack) — the freeze the
 * coalescing path exists to break.
 */
workload::Workload
makeFlipVariantWorkload()
{
    workload::ProgramBuilder b("flipvar", 17);

    const ir::FuncId g = b.function("g", 24);
    const int kDiamonds = 8;
    std::vector<ir::BlockId> head(kDiamonds), taken(kDiamonds),
        fall(kDiamonds);
    const ir::BlockId gexit = b.block(g);
    for (int i = 0; i < kDiamonds; ++i) {
        head[i] = b.block(g);
        taken[i] = b.block(g);
        fall[i] = b.block(g);
    }
    b.entry(g, head[0]);
    for (int i = 0; i < kDiamonds; ++i) {
        b.compute(g, head[i], 2);
        // First half: skeleton branches, same bias in both phases.
        // Second half: flip branches, bias inverts with the phase. The
        // minor arm must stay under both hot-arc tests (fraction 0.02 <
        // 0.25; weight 0.02 * 511-saturated exec ~ 10 < 16) so each
        // variant's bundle really excludes it, and the flip arms carry
        // most of the lap so serving collapses when the phase flips.
        const bool flip = i >= kDiamonds / 2;
        const std::vector<double> probs =
            flip ? std::vector<double>{0.98, 0.02}
                 : std::vector<double>{0.98, 0.98};
        b.condbr(g, head[i], taken[i], fall[i], probs);
        b.compute(g, taken[i], flip ? 40 : 10);
        b.compute(g, fall[i], flip ? 40 : 10);
        const ir::BlockId next = i + 1 < kDiamonds ? head[i + 1] : gexit;
        b.jump(g, taken[i], next);
        b.jump(g, fall[i], next);
    }
    b.compute(g, gexit, 1);
    b.ret(g, gexit);

    const ir::FuncId f = b.function("f", 12);
    const ir::BlockId f0 = b.block(f), f1 = b.block(f);
    b.entry(f, f0);
    b.compute(f, f0, 2);
    b.call(f, f0, g, f1);
    b.compute(f, f1, 1);
    b.ret(f, f1);

    const ir::FuncId m = b.function("main", 12);
    const ir::BlockId m0 = b.block(m), m1 = b.block(m), m2 = b.block(m);
    b.entry(m, m0);
    b.compute(m, m0, 2);
    b.call(m, m0, f, m1);
    // Never falls out: the dynamic-instruction budget ends the run.
    b.condbr(m, m1, m0, m2, {1.0, 1.0});
    b.ret(m, m2);
    b.entryFunc(m);

    // ~9 branches and ~225 insts per lap: 8k branches per segment is
    // ~20 quanta, so the detector snapshots each variant repeatedly
    // before the schedule hands over; cyclic so the variants keep
    // alternating (~10 segments inside the budget).
    return b.finish("flipvar", "A",
                    workload::PhaseSchedule({{0, 8'000}, {1, 8'000}},
                                            true),
                    2'000'000);
}

RuntimeStats
runFlipVariant(bool merge, unsigned workers = 1,
               trace::InstSink *sink = nullptr)
{
    workload::Workload w = makeFlipVariantWorkload();
    RuntimeConfig cfg;
    cfg.vp = VpConfig::variant(true, true);
    cfg.workers = workers;
    cfg.mergeOverlapping = merge;
    RuntimeController controller(w, cfg);
    if (sink)
        controller.addSink(sink);
    return controller.run();
}

/** Logical branch-stream fingerprint of the first @p limit retired
 *  conditional branches (BehaviorId + oracle outcome, with invertSense
 *  undoing layout swaps); identical no matter what code — original,
 *  fragment bundle, merged bundle — serves each retire. */
class BranchStreamSink final : public trace::InstSink
{
  public:
    explicit BranchStreamSink(std::uint64_t limit) : limit_(limit) {}

    void
    onRetire(const trace::RetiredInst &ri) override
    {
        if (count_ >= limit_)
            return;
        ++count_;
        const bool outcome = ri.branchTaken ^ ri.inst->invertSense;
        hash_ = (hash_ ^ (ri.inst->behavior * 2 + outcome)) *
                1099511628211ull;
    }

    unsigned eventMask() const override { return trace::kEventBranches; }

    std::uint64_t count() const { return count_; }
    std::uint64_t hash() const { return hash_; }

  private:
    std::uint64_t limit_;
    std::uint64_t count_ = 0;
    std::uint64_t hash_ = 14695981039346656037ull;
};

// ------------------------------------------------------ end-to-end runs

TEST(MergeRuntime, FlipVariantsCoalesceIntoMergedBundle)
{
    const RuntimeStats on = runFlipVariant(true);
    ASSERT_GT(on.detections, 0u);
    EXPECT_GT(on.merges, 0u);
    EXPECT_GT(on.fragmentsRetired, 0u);

    // At least one merged bundle was synthesized, installed, and did
    // real work; the fragments it absorbed were retired as merges, not
    // displacements.
    bool merged_served = false;
    for (const BundleStats &bs : on.bundles)
        merged_served |= bs.merged && bs.instsRetired > 0;
    EXPECT_TRUE(merged_served);
    EXPECT_GT(on.mergedInstsRetired(), 0u);

    const RuntimeStats off = runFlipVariant(false);
    EXPECT_EQ(off.merges, 0u);
    EXPECT_EQ(off.fragmentsRetired, 0u);
    for (const BundleStats &bs : off.bundles)
        EXPECT_FALSE(bs.merged);
}

TEST(MergeRuntime, MergedCoverageAtLeastNoMerge)
{
    const RuntimeStats on = runFlipVariant(true);
    const RuntimeStats off = runFlipVariant(false);
    EXPECT_GE(on.packageCoverage(), off.packageCoverage());

    // The variants keep re-detecting; without coalescing they churn
    // rival rebuilds forever. The merged run must spend strictly fewer
    // bundles displacing each other.
    EXPECT_LE(on.displacements, off.displacements);
}

TEST(MergeRuntime, LogicalStreamInvariantAcrossMergeModeAndWorkers)
{
    // Packaging removes jumps/calls, so at an equal instruction budget
    // merge-on and merge-off reach different program points; the
    // invariant across *modes* is a common prefix of the logical branch
    // stream. Across *worker counts* the whole run must be identical.
    constexpr std::uint64_t kPrefix = 50'000;
    BranchStreamSink base(kPrefix);
    runFlipVariant(true, 1, &base);
    ASSERT_EQ(base.count(), kPrefix);

    BranchStreamSink nomerge(kPrefix);
    runFlipVariant(false, 1, &nomerge);
    ASSERT_EQ(nomerge.count(), kPrefix);
    EXPECT_EQ(base.hash(), nomerge.hash());

    BranchStreamSink full(BundleStats::kNever), wide(BundleStats::kNever);
    runFlipVariant(true, 1, &full);
    runFlipVariant(true, 8, &wide);
    ASSERT_GT(full.count(), kPrefix);
    EXPECT_EQ(full.count(), wide.count());
    EXPECT_EQ(full.hash(), wide.hash());
}

TEST(MergeRuntime, ReportByteIdenticalAcrossWorkerCounts)
{
    std::string texts[2];
    const unsigned counts[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        workload::Workload w = workload::makeParser("A");
        RuntimeConfig cfg;
        cfg.vp = VpConfig::variant(true, true);
        cfg.budget = 600'000;
        cfg.workers = counts[i];
        RuntimeController controller(w, cfg);
        texts[i] = toText(controller.run(), w.label());
    }
    EXPECT_EQ(texts[0], texts[1]);
}

// ------------------------------------------------------------ unit seams

hsd::HotSpotRecord
makeRecord(const std::vector<std::pair<ir::BehaviorId, double>> &branches,
           std::uint32_t exec = 1000)
{
    hsd::HotSpotRecord r;
    for (const auto &[behavior, taken_fraction] : branches) {
        hsd::HotBranch hb;
        hb.behavior = behavior;
        hb.exec = exec;
        hb.taken = static_cast<std::uint32_t>(exec * taken_fraction);
        r.branches.push_back(hb);
    }
    return r;
}

TEST(MergeFilter, OverlapIsBiasAgnostic)
{
    // Same branch set, every bias flipped: full overlap. Whether that
    // is one phase to coalesce or two to keep apart is the caller's
    // decision, made with biasFlips().
    const auto a = makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}});
    const auto b = makeRecord({{1, 0.1}, {2, 0.1}, {3, 0.1}});
    EXPECT_DOUBLE_EQ(hsd::hotSpotOverlap(a, b), 1.0);

    // Overlap is measured against the smaller record.
    const auto big =
        makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}, {4, 0.9}, {5, 0.9},
                    {6, 0.9}});
    const auto half = makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}, {7, 0.9}});
    EXPECT_DOUBLE_EQ(hsd::hotSpotOverlap(big, half), 0.75);
    EXPECT_DOUBLE_EQ(hsd::hotSpotOverlap(half, big), 0.75);
}

TEST(MergeFilter, BiasFlipsCountsOnlyBiasedDisagreements)
{
    const auto a = makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.5}, {4, 0.9}});
    const auto b = makeRecord({{1, 0.1}, {2, 0.9}, {3, 0.9}, {5, 0.1}});
    // 1 flips; 2 agrees; 3 is unbiased on one side (no flip); 4/5 are
    // not common.
    EXPECT_EQ(hsd::biasFlips(a, b), 1u);
    EXPECT_EQ(hsd::biasFlips(b, a), 1u);
    EXPECT_EQ(hsd::biasFlips(a, a), 0u);
}

TEST(MergeBundle, UnionRecordsSumsCommonCounts)
{
    const auto a = makeRecord({{1, 0.9}, {2, 0.9}}, 1000);
    const auto b = makeRecord({{2, 0.1}, {3, 0.1}}, 1000);
    const auto u = unionRecords(a, b);
    ASSERT_EQ(u.branches.size(), 3u);

    // Behavior 2 flipped between the variants: summed counts land the
    // union near 50% so region inference heats both arc directions.
    const hsd::HotBranch *common = u.find(2);
    ASSERT_NE(common, nullptr);
    EXPECT_EQ(common->exec, 2000u);
    EXPECT_EQ(common->taken, 1000u);
    const double f = common->takenFraction();
    EXPECT_GT(f, 0.3);
    EXPECT_LT(f, 0.7);

    // mergeRecords, by contrast, keeps the base's counts for common
    // behaviors (it only restores working-set breadth).
    const auto m = mergeRecords(a, b);
    const hsd::HotBranch *kept = m.find(2);
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->exec, 1000u);
    EXPECT_EQ(kept->taken, 900u);
}

TEST(MergeBundle, PhaseKeySeparatesBiasVariantsAndIgnoresOrder)
{
    const auto a = makeRecord({{1, 0.9}, {2, 0.9}});
    const auto b = makeRecord({{2, 0.9}, {1, 0.9}});
    const auto flipped = makeRecord({{1, 0.1}, {2, 0.9}});
    EXPECT_EQ(phaseKey(a), phaseKey(b));
    EXPECT_NE(phaseKey(a), phaseKey(flipped));

    // A balanced union hashes differently from either one-sided
    // fragment — how completeJob tells a coalesced bundle from the
    // active fragment it replaces.
    const auto u = unionRecords(a, flipped);
    EXPECT_NE(phaseKey(u), phaseKey(a));
    EXPECT_NE(phaseKey(u), phaseKey(flipped));
}

class MergeCacheTest : public ::testing::Test
{
  protected:
    MergeCacheTest()
        : subsume_([] {
              hsd::FilterConfig s;
              s.missingFraction = 0.10;
              s.maxBiasFlips = 0;
              return s;
          }()),
          cache_(0, hsd::FilterConfig{}, true, subsume_)
    {}

    std::size_t
    addEntry(const hsd::HotSpotRecord &rec, bool resident, bool merged)
    {
        CacheEntry e;
        e.bundle.record = rec;
        e.resident = resident;
        if (merged)
            e.mergedFrom.push_back(9999);
        return cache_.add(std::move(e));
    }

    hsd::FilterConfig subsume_;
    PackageCache cache_;
};

TEST_F(MergeCacheTest, FindSupersetServesMergedEntriesByDefault)
{
    const auto uni =
        makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}, {4, 0.9}});
    const auto frag = makeRecord({{1, 0.9}, {2, 0.9}});
    const std::size_t dormant_union = addEntry(uni, false, true);

    // A dormant merged union answers; a fragment-sized record finds it
    // even though the symmetric sameHotSpot rule can never match it.
    EXPECT_EQ(cache_.findSuperset(frag), dormant_union);

    // A resident merged union is preferred over the dormant one.
    const std::size_t resident_union = addEntry(uni, true, true);
    EXPECT_EQ(cache_.findSuperset(frag), resident_union);

    // Bias flips break containment: the superset covers the fragment's
    // branches, not its opposite-direction variant.
    const auto flipped = makeRecord({{1, 0.1}, {2, 0.1}});
    EXPECT_EQ(cache_.findSuperset(flipped), PackageCache::npos);
}

TEST_F(MergeCacheTest, UnmergedSupersetsAnswerOnlyWhenOptedInAndResident)
{
    const auto sup =
        makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}, {4, 0.9}});
    const auto frag = makeRecord({{1, 0.9}, {2, 0.9}});

    // Dormant + unmerged: never answers, even when opted in — the only
    // evidence an ordinary entry covers the fragment is live serving.
    addEntry(sup, false, false);
    EXPECT_EQ(cache_.findSuperset(frag), PackageCache::npos);
    EXPECT_EQ(cache_.findSuperset(frag, true), PackageCache::npos);

    // Resident + unmerged: answers only on request.
    const std::size_t resident = addEntry(sup, true, false);
    EXPECT_EQ(cache_.findSuperset(frag), PackageCache::npos);
    EXPECT_EQ(cache_.findSuperset(frag, true), resident);
}

TEST_F(MergeCacheTest, QuarantineOfMergedPhaseCoversItsFragments)
{
    const auto uni =
        makeRecord({{1, 0.9}, {2, 0.9}, {3, 0.9}, {4, 0.9}});
    const auto frag = makeRecord({{1, 0.9}, {2, 0.9}});
    const auto unrelated = makeRecord({{7, 0.9}, {8, 0.9}});

    cache_.quarantine(uni, 10, 16, 1024);
    EXPECT_TRUE(cache_.quarantined(uni, 11));
    // The fragment would have been served by the union's bundle, so the
    // union's backoff must block its rebuild too.
    EXPECT_TRUE(cache_.quarantined(frag, 11));
    EXPECT_FALSE(cache_.quarantined(unrelated, 11));
    // Backoff expiry releases both.
    EXPECT_FALSE(cache_.quarantined(frag, 10 + 16));
}

} // namespace
