/**
 * @file
 * Tests for dynamic launch-point selectors — the Section 3.3.4
 * alternative to static links ("dynamically modify the launch point
 * branch to point to the expected best package... a monitoring code
 * snippet along the exit path to feed a dynamic predictor"): selector
 * construction, engine adaptation, semantic preservation, and its
 * coverage effect relative to static left-most launching.
 */

#include <gtest/gtest.h>

#include "ir/verify.hh"
#include "package/packager.hh"
#include "hsd/detector.hh"
#include "hsd/filter.hh"
#include "region/identify.hh"
#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "sim/core.hh"
#include "vp/evaluate.hh"
#include "vp/pipeline.hh"
#include "workload/benchmarks.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::package;

/** Profile the tiny two-phase workload and build one region per unique
 *  hot spot — two phase-specialized packages sharing the loop root. */
std::vector<region::Region>
tinyRegions(const test::TinyWorkload &t)
{
    trace::ExecutionEngine engine(t.w.program, t.w);
    hsd::HotSpotDetector det((hsd::HsdConfig()), &engine.oracle());
    engine.addSink(&det);
    engine.run(600'000);
    const auto recs = hsd::filterRedundant(det.records());
    std::vector<region::Region> regions;
    for (const auto &rec : recs)
        regions.push_back(region::identifyRegion(t.w.program, rec, {}));
    return regions;
}

TEST(DynLaunch, BuildsSelectorsForSharedOrigins)
{
    test::TinyWorkload t = test::makeTiny();
    const auto regions = tinyRegions(t);
    PackageConfig cfg;
    cfg.linking = false;
    cfg.dynamicLaunch = true;
    const PackagedProgram pp = buildPackages(t.w.program, regions, cfg);
    EXPECT_TRUE(verify(pp.program).empty());

    // A selector stub function exists, holding Selector blocks whose
    // targets are package entry blocks.
    const Function *stub = nullptr;
    for (const auto &fn : pp.program.functions()) {
        if (fn.name() == "__launch_selectors")
            stub = &fn;
    }
    ASSERT_NE(stub, nullptr);
    EXPECT_FALSE(stub->isPackage());
    std::size_t selectors = 0;
    for (const auto &bb : stub->blocks()) {
        if (bb.kind != BlockKind::Selector)
            continue;
        ++selectors;
        EXPECT_GE(bb.selectorTargets.size(), 2u);
        for (const BlockRef &tgt : bb.selectorTargets)
            EXPECT_TRUE(pp.program.func(tgt.func).isPackage());
        // Static fallback is the first candidate.
        EXPECT_EQ(bb.taken, bb.selectorTargets.front());
    }
    EXPECT_GE(selectors, 1u);
}

TEST(DynLaunch, NoSelectorsWhenDisabledOrUnshared)
{
    test::TinyWorkload t = test::makeTiny();
    const auto regions = tinyRegions(t);
    PackageConfig cfg; // dynamicLaunch = false
    const PackagedProgram pp = buildPackages(t.w.program, regions, cfg);
    for (const auto &fn : pp.program.functions())
        EXPECT_NE(fn.name(), "__launch_selectors");
}

TEST(DynLaunch, PreservesLogicalBranchStream)
{
    test::TinyWorkload t = test::makeTiny(42, 300'000);
    const auto regions = tinyRegions(t);
    PackageConfig cfg;
    cfg.linking = false;
    cfg.dynamicLaunch = true;
    const PackagedProgram pp = buildPackages(t.w.program, regions, cfg);

    trace::ExecutionEngine orig(t.w.program, t.w);
    const auto so = orig.run(t.w.maxDynInsts);
    trace::ExecutionEngine packed(pp.program, t.w);
    const auto sp = packed.run(t.w.maxDynInsts * 2, so.dynBranches);
    EXPECT_EQ(so.dynBranches, sp.dynBranches);
    EXPECT_EQ(so.takenBranches, sp.takenBranches);
}

TEST(DynLaunch, AdaptationBeatsStaticLeftmostWithoutLinks)
{
    // gzip's literal/match phases share the deflate loop's launch point;
    // without links, static left-most deployment strands one phase's
    // package (~50-60% coverage). The selector learns to route each
    // phase to its own package.
    workload::Workload w = workload::makeWorkload("164.gzip", "A");
    w.maxDynInsts = 800'000;

    auto coverage = [&](bool dynamic) {
        VpConfig cfg = VpConfig::variant(true, false); // no links
        cfg.package.dynamicLaunch = dynamic;
        VacuumPacker packer(w, cfg);
        const VpResult r = packer.run();
        return measureCoverage(w, r.packaged.program).packageCoverage();
    };
    const double stat = coverage(false);
    const double dyn = coverage(true);
    EXPECT_GT(dyn, stat + 0.1);
    EXPECT_GT(dyn, 0.8);
}

TEST(DynLaunch, WorksOnRealWorkloadEndToEnd)
{
    workload::Workload w = workload::makeWorkload("124.m88ksim", "A");
    VpConfig cfg = VpConfig::variant(true, false); // no links
    cfg.package.dynamicLaunch = true;
    VacuumPacker packer(w, cfg);
    const VpResult r = packer.run();
    EXPECT_TRUE(verify(r.packaged.program).empty());

    const auto cov = measureCoverage(w, r.packaged.program);
    // m88ksim's loader phases share one launch point; without links the
    // static deployment strands one of them (~60% coverage). The
    // selector recovers most of it.
    EXPECT_GT(cov.packageCoverage(), 0.8);
}

TEST(DynLaunch, SelectorJumpChargesIndirectBranchCosts)
{
    // The selector is real deployed code: its jump retires and the
    // timing model sees a (BTB-predicted) indirect transfer.
    test::TinyWorkload t = test::makeTiny(42, 200'000);
    const auto regions = tinyRegions(t);
    PackageConfig cfg;
    cfg.linking = false;
    cfg.dynamicLaunch = true;
    const PackagedProgram pp = buildPackages(t.w.program, regions, cfg);

    trace::ExecutionEngine e(pp.program, t.w);
    sim::EpicCore core(pp.program);
    e.addSink(&core);
    e.run(t.w.maxDynInsts);
    EXPECT_GT(core.stats().takenTransfers, 0u);
    EXPECT_GT(core.stats().insts, 0u);
}

} // namespace
