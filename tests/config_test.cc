/**
 * @file
 * Pins the hardware configuration defaults against the paper's Table 2.
 *
 * Both config structs are literal types, so the pinning is done with
 * static_asserts over default-constructed constexpr instances — drifting
 * a default breaks the *build*, not just a test run. The runtime TESTs
 * below only exist so the pins show up in the ctest inventory.
 */

#include <gtest/gtest.h>

#include "hsd/bbb.hh"
#include "sim/machine.hh"

namespace
{

using namespace vp;

// --- Hot Spot Detector (Table 2, "Hot spot detection hardware"). -------

constexpr hsd::HsdConfig kHsd{};

static_assert(kHsd.sets == 512, "Num BBB sets");
static_assert(kHsd.ways == 4, "BBB associativity");
static_assert(kHsd.counterBits == 9, "exec/taken counter bits");
static_assert(kHsd.candidateThreshold == 16, "candidate branch threshold");
static_assert(kHsd.refreshInterval == 8192, "refresh timer interval");
// 65536, not 65526: the clear timer is a power-of-two branch interval
// (2^16), like every other timer in the table.
static_assert(kHsd.clearInterval == 65536, "clear timer interval");
static_assert(kHsd.hdcBits == 13, "hot spot detection counter bits");
static_assert(kHsd.hdcInc == 2, "HDC increment");
static_assert(kHsd.hdcDec == 1, "HDC decrement");

// The detection-time signature history is a post-paper enhancement and
// must stay *off* by default to reproduce the evaluated configuration.
static_assert(kHsd.historyDepth == 0, "history disabled by default");

// --- EPIC machine model (Table 2, "Processor model"). ------------------

constexpr sim::MachineConfig kMc{};

static_assert(kMc.issueWidth == 8, "instruction issue");
static_assert(kMc.numIAlu == 5, "integer ALU units");
static_assert(kMc.numFp == 3, "floating point units");
static_assert(kMc.numMem == 3, "memory units");
static_assert(kMc.numBranch == 3, "branch units");

static_assert(kMc.latIAlu == 1, "integer ALU latency");
static_assert(kMc.latFAlu == 3, "FP ALU latency");
static_assert(kMc.latFMul == 8, "long-latency FP");
static_assert(kMc.latLoadL1 == 2, "L1 load-use latency");
static_assert(kMc.schedLoadLatency == 8, "scheduler load spacing");
static_assert(kMc.latStore == 1, "store latency");
static_assert(kMc.latBranch == 1, "branch latency");

static_assert(kMc.branchResolution == 7, "mispredict penalty");
static_assert(kMc.gshareHistoryBits == 10, "gshare history bits");
static_assert(kMc.btbEntries == 1024, "BTB entries");
static_assert(kMc.rasEntries == 32, "RAS entries");

static_assert(kMc.l1dBytes == 64 * 1024, "L1 data cache size");
static_assert(kMc.l1iBytes == 512 * 1024, "L1 instruction cache size");
static_assert(kMc.l2Bytes == 64 * 1024, "unified L2 size");
static_assert(kMc.lineBytes == 64, "cache line size");
static_assert(kMc.l1Assoc == 4, "L1 associativity");
static_assert(kMc.l2Assoc == 8, "L2 associativity");
static_assert(kMc.latL2 == 10, "L2 hit latency");
static_assert(kMc.latMemory == 80, "memory latency");
static_assert(kMc.ldStBufEntries == 8, "load/store buffer entries");

TEST(Table2Config, HsdDefaultsPinned)
{
    // The static_asserts above are the real check; this confirms the
    // default-constructed runtime values match the constexpr instance.
    const hsd::HsdConfig cfg;
    EXPECT_EQ(cfg.clearInterval, 65536u);
    EXPECT_EQ(cfg.sets, 512u);
    EXPECT_EQ(cfg.hdcBits, 13u);
}

TEST(Table2Config, MachineDefaultsPinned)
{
    const sim::MachineConfig mc;
    EXPECT_EQ(mc.issueWidth, 8u);
    EXPECT_EQ(mc.branchResolution, 7u);
    EXPECT_EQ(mc.latMemory, 80u);
}

} // namespace
