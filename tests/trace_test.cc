/**
 * @file
 * Tests for the execution substrate: the deterministic branch oracle and
 * the CFG-walking engine (call stack, budget, pseudo skipping, exit-frame
 * materialization, retired-event fields).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "tests/helpers.hh"
#include "trace/engine.hh"
#include "trace/oracle.hh"

namespace
{

using namespace vp;
using namespace vp::ir;
using namespace vp::trace;

// ------------------------------------------------------------------ oracle

TEST(Oracle, DeterministicReplay)
{
    test::TinyWorkload t = test::makeTiny();
    BranchOracle a(t.w.behaviors, t.w.schedule);
    BranchOracle b(t.w.behaviors, t.w.schedule);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(a.decideBranch(t.dispatchBr), b.decideBranch(t.dispatchBr));
}

TEST(Oracle, PhaseFollowsSchedule)
{
    test::TinyWorkload t = test::makeTiny();
    BranchOracle o(t.w.behaviors, t.w.schedule);
    EXPECT_EQ(o.currentPhase(), 0u);
    for (int i = 0; i < 20'000; ++i)
        o.decideBranch(t.dispatchBr);
    EXPECT_EQ(o.currentPhase(), 1u); // schedule: 20k/20k cyclic
    for (int i = 0; i < 20'000; ++i)
        o.decideBranch(t.dispatchBr);
    EXPECT_EQ(o.currentPhase(), 0u);
}

TEST(Oracle, BiasTracksPhase)
{
    test::TinyWorkload t = test::makeTiny();
    BranchOracle o(t.w.behaviors, t.w.schedule);
    int taken0 = 0;
    for (int i = 0; i < 10'000; ++i)
        taken0 += o.decideBranch(t.dispatchBr) ? 1 : 0;
    // Phase 0: p=.9
    EXPECT_NEAR(taken0 / 10'000.0, 0.9, 0.03);
    for (int i = 0; i < 10'000; ++i)
        o.decideBranch(t.dispatchBr);
    int taken1 = 0;
    for (int i = 0; i < 10'000; ++i)
        taken1 += o.decideBranch(t.dispatchBr) ? 1 : 0;
    // Phase 1: p=.1
    EXPECT_NEAR(taken1 / 10'000.0, 0.1, 0.03);
}

TEST(Oracle, MemAddressesAreDeterministic)
{
    workload::BehaviorMap map;
    workload::MemBehavior mb;
    mb.base = 0x1000;
    mb.stride = 16;
    mb.footprint = 64;
    map.addMem(5, mb);
    workload::PhaseSchedule sched({{0, 100}}, false);
    BranchOracle o1(map, sched), o2(map, sched);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(o1.memAddress(5), o2.memAddress(5));
}

// ------------------------------------------------------------------ engine

TEST(Engine, RunsToBudget)
{
    test::TinyWorkload t = test::makeTiny();
    ExecutionEngine engine(t.w.program, t.w);
    const RunStats stats = engine.run(50'000);
    EXPECT_EQ(stats.dynInsts, 50'000u);
    EXPECT_TRUE(stats.hitBudget);
    EXPECT_GT(stats.dynBranches, 1'000u);
    EXPECT_GT(stats.dynCalls, 100u);
}

TEST(Engine, IdenticalRunsProduceIdenticalStats)
{
    test::TinyWorkload t = test::makeTiny();
    ExecutionEngine e1(t.w.program, t.w);
    ExecutionEngine e2(t.w.program, t.w);
    const RunStats s1 = e1.run(80'000);
    const RunStats s2 = e2.run(80'000);
    EXPECT_EQ(s1.dynInsts, s2.dynInsts);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
    EXPECT_EQ(s1.dynCalls, s2.dynCalls);
}

TEST(Engine, ProgramExitOnEntryFunctionReturn)
{
    // Single function that immediately returns.
    workload::ProgramBuilder b("exit", 1);
    const auto f = b.function("m", 8);
    const auto b0 = b.block(f);
    b.entry(f, b0);
    b.compute(f, b0, 5);
    b.ret(f, b0);
    b.entryFunc(f);
    workload::Workload w =
        b.finish("exit", "A", workload::PhaseSchedule({{0, 10}}, false), 100);

    ExecutionEngine engine(w.program, w);
    const RunStats stats = engine.run(1'000);
    EXPECT_EQ(stats.dynInsts, 6u); // 5 compute + ret
    EXPECT_FALSE(stats.hitBudget);
}

TEST(Engine, RunToCompletionBudgetDoesNotWrap)
{
    // Regression: run(UINT64_MAX) used to compute its internal step
    // budget as max_insts * 4 + 1024, which wraps to 1020 and turns a
    // run-to-completion request into a near-empty run.
    workload::ProgramBuilder b("exit", 1);
    const auto f = b.function("m", 8);
    const auto b0 = b.block(f);
    b.entry(f, b0);
    b.compute(f, b0, 5);
    b.ret(f, b0);
    b.entryFunc(f);
    workload::Workload w =
        b.finish("exit", "A", workload::PhaseSchedule({{0, 10}}, false), 100);

    ExecutionEngine engine(w.program, w);
    const RunStats stats =
        engine.run(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(stats.dynInsts, 6u); // ran to program exit, not a step cap
    EXPECT_FALSE(stats.hitBudget);
}

/** Sink recording the retired stream. */
class Recorder : public InstSink
{
  public:
    void onRetire(const RetiredInst &ri) override { events.push_back(ri); }
    std::vector<RetiredInst> events;
};

TEST(Engine, RetiredEventFieldsAreConsistent)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.7}, {5.0}, 500);
    ExecutionEngine engine(d.w.program, d.w);
    Recorder rec;
    engine.addSink(&rec);
    engine.run(500);
    ASSERT_FALSE(rec.events.empty());
    for (std::size_t i = 0; i + 1 < rec.events.size(); ++i) {
        // The next event's pc is the previous event's nextPc.
        EXPECT_EQ(rec.events[i].nextPc, rec.events[i + 1].pc);
        EXPECT_NE(rec.events[i].pc, kInvalidAddr);
    }
}

TEST(Engine, PseudoInstructionsNeverRetire)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.7}, {5.0}, 2000);
    // Inject a pseudo instruction into the hot diamond arm.
    Instruction p;
    p.op = Opcode::Nop;
    p.pseudo = true;
    p.srcs = {0};
    auto &bb = d.w.program.func(d.f).block(d.b2);
    bb.insts.insert(bb.insts.begin(), p);
    d.w.program.layout();

    ExecutionEngine engine(d.w.program, d.w);
    Recorder rec;
    engine.addSink(&rec);
    engine.run(2000);
    for (const auto &e : rec.events)
        EXPECT_FALSE(e.inst->pseudo);
}

TEST(Engine, ExitFramesAreMaterialized)
{
    // g is "inlined" away: a package-like function pf contains an exit
    // block with one frame pointing at main's post-call block; the exit
    // jumps into the middle of g, and g's ret must come back via the
    // materialized frame.
    workload::ProgramBuilder b("frames", 3);
    // g: g0 -> ret
    const auto g = b.function("g", 8);
    const auto g0 = b.block(g);
    b.entry(g, g0);
    b.compute(g, g0, 3);
    b.ret(g, g0);
    // main: m0 launches (jumps) into the package; m1 is the original
    // return point of the call to g that the package elided.
    const auto m = b.function("main", 8);
    const auto m0 = b.block(m);
    const auto m1 = b.block(m);
    b.entry(m, m0);
    b.compute(m, m0, 2);
    b.jump(m, m0, m0); // placeholder; retargeted cross-function below
    b.compute(m, m1, 2);
    b.ret(m, m1);
    b.entryFunc(m);
    // pf: p0 (exit kind) jumps into g with one elided frame -> m... no:
    // frame must be the return point of the elided call to g, i.e. a
    // block in main... we use m1 as the elided return point.
    const auto pf = b.function("pkg", 8);
    const auto p0 = b.block(pf);
    b.entry(pf, p0);
    b.compute(pf, p0, 1);
    b.jump(pf, p0, p0); // placeholder; rewritten below

    ir::Program &prog = b.program();
    prog.func(m).block(m0).taken = ir::BlockRef{pf, 0}; // the launch point
    prog.func(pf).setIsPackage(true);
    auto &pb = prog.func(pf).block(p0);
    pb.kind = ir::BlockKind::Exit;
    pb.exitFrames = {ir::BlockRef{m, m1}};
    pb.taken = ir::BlockRef{g, g0};

    workload::Workload w = b.finish(
        "frames", "A", workload::PhaseSchedule({{0, 10}}, false), 100);

    // Expected retirement: m0 (2+jump launch), p0 (1+jump exit, pushes the
    // elided frame), g0 (3+ret -> pops the materialized frame to m1),
    // m1 (2+ret -> program exit).
    ExecutionEngine engine(w.program, w);
    Recorder rec;
    engine.addSink(&rec);
    const RunStats stats = engine.run(1'000);
    EXPECT_FALSE(stats.hitBudget);
    EXPECT_EQ(stats.dynInsts, 3u + 2u + 4u + 3u);
    // The last retired instruction must be m1's ret.
    ASSERT_FALSE(rec.events.empty());
    EXPECT_EQ(rec.events.back().block, (ir::BlockRef{m, m1}));
    EXPECT_EQ(rec.events.back().inst->op, Opcode::Ret);
}

TEST(Engine, PackageCoverageCountsPackageBlocks)
{
    test::TinyWorkload t = test::makeTiny();
    // Mark alpha as a package: its retired instructions count as covered.
    t.w.program.func(t.alpha).setIsPackage(true);
    ExecutionEngine engine(t.w.program, t.w);
    const RunStats stats = engine.run(50'000);
    EXPECT_GT(stats.instsInPackages, 0u);
    EXPECT_LT(stats.instsInPackages, stats.dynInsts);
    EXPECT_GT(stats.packageCoverage(), 0.2); // alpha dominates phase 0
}

TEST(Engine, InvertSenseFlipsArchitecturalDirection)
{
    test::DiamondLoop d = test::makeDiamondLoop({0.9}, {10.0}, 5'000);
    ExecutionEngine e1(d.w.program, d.w);
    const RunStats s1 = e1.run(5'000);

    // Flip the diamond branch: swap targets + invert.
    auto &bb = d.w.program.func(d.f).block(d.b1);
    std::swap(bb.taken, bb.fall);
    bb.terminator()->invertSense = true;
    d.w.program.layout();

    ExecutionEngine e2(d.w.program, d.w);
    const RunStats s2 = e2.run(5'000);
    // Logical execution identical: same instruction count.
    EXPECT_EQ(s1.dynInsts, s2.dynInsts);
    EXPECT_EQ(s1.dynBranches, s2.dynBranches);
    // Architectural taken counts complement each other on that branch;
    // totals must differ (the branch is strongly biased).
    EXPECT_NE(s1.takenBranches, s2.takenBranches);
}

TEST(Engine, QuantumSteppingMatchesSingleRun)
{
    test::TinyWorkload t = test::makeTiny();
    ExecutionEngine whole(t.w.program, t.w);
    const RunStats one = whole.run(100'000);

    // The same walk in uneven quanta (budgets land mid-block) must
    // retire the identical stream — same totals, same stopping point.
    ExecutionEngine stepped(t.w.program, t.w);
    stepped.reset();
    const std::uint64_t quanta[] = {1, 7, 100, 3'333, 50'000, 100'000};
    std::size_t qi = 0;
    while (!stepped.finished() && stepped.stats().dynInsts < 100'000) {
        const std::uint64_t left = 100'000 - stepped.stats().dynInsts;
        const std::uint64_t q = std::min(quanta[qi % 6], left);
        ++qi;
        stepped.resume(q);
    }
    EXPECT_EQ(stepped.stats().dynInsts, one.dynInsts);
    EXPECT_EQ(stepped.stats().dynBranches, one.dynBranches);
    EXPECT_EQ(stepped.stats().takenBranches, one.takenBranches);
    EXPECT_EQ(stepped.stats().dynCalls, one.dynCalls);
    EXPECT_EQ(stepped.finished(), !one.hitBudget);
}

TEST(Engine, ResetReplaysIdentically)
{
    test::TinyWorkload t = test::makeTiny();
    ExecutionEngine engine(t.w.program, t.w);
    engine.reset();
    engine.resume(40'000);
    const RunStats first = engine.stats();
    engine.reset(); // re-arms the oracle too
    engine.resume(40'000);
    EXPECT_EQ(engine.stats().dynInsts, first.dynInsts);
    EXPECT_EQ(engine.stats().takenBranches, first.takenBranches);
}

} // namespace
