/**
 * @file
 * Unit tests for the support module: saturating counters, bitsets,
 * deterministic RNG, statistics accumulators, and the table printer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/bitset.hh"
#include "support/rng.hh"
#include "support/sat_counter.hh"
#include "support/saturating.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace
{

using namespace vp;

// ---------------------------------------------------------------- SatCounter

TEST(SatCounter, StartsAtInitialValue)
{
    SatCounter c(4, 3);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(c.max(), 15u);
}

TEST(SatCounter, InitialValueClampsToMax)
{
    SatCounter c(3, 100);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, AddSaturatesAtMax)
{
    SatCounter c(3); // max 7
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(c.add());
    EXPECT_EQ(c.value(), 6u);
    EXPECT_TRUE(c.add()); // reaches 7
    EXPECT_TRUE(c.saturated());
    EXPECT_TRUE(c.add()); // stays 7
    EXPECT_EQ(c.value(), 7u);
}

TEST(SatCounter, SubSaturatesAtZero)
{
    SatCounter c(4, 2);
    EXPECT_FALSE(c.sub());
    EXPECT_TRUE(c.sub()); // hits zero
    EXPECT_TRUE(c.zero());
    EXPECT_TRUE(c.sub()); // stays zero
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, AddLargeStepClamps)
{
    SatCounter c(4);
    c.add(1000);
    EXPECT_EQ(c.value(), 15u);
}

TEST(SatCounter, SubLargeStepClamps)
{
    SatCounter c(4, 10);
    c.sub(1000);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, NineBitCounterMatchesTable2)
{
    SatCounter c(9);
    EXPECT_EQ(c.max(), 511u);
}

TEST(SatCounter, ThirteenBitCounterMatchesTable2)
{
    SatCounter c(13);
    EXPECT_EQ(c.max(), 8191u);
}

TEST(SatCounter, ResetClamps)
{
    SatCounter c(4);
    c.reset(99);
    EXPECT_EQ(c.value(), 15u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, AddZeroIsStatePreservingNoOp)
{
    // A disabled increment (hdcInc == 0) must neither move the counter
    // nor report saturation — even when already saturated.
    SatCounter c(4, 5);
    EXPECT_FALSE(c.add(0));
    EXPECT_EQ(c.value(), 5u);

    SatCounter at_max(4, 15);
    ASSERT_TRUE(at_max.saturated());
    EXPECT_FALSE(at_max.add(0));
    EXPECT_EQ(at_max.value(), 15u);
}

TEST(SatCounter, SubZeroIsStatePreservingNoOp)
{
    // A disabled decrement (hdcDec == 0) must neither move the counter
    // nor report zero — even when the counter already sits at zero.
    SatCounter c(4, 5);
    EXPECT_FALSE(c.sub(0));
    EXPECT_EQ(c.value(), 5u);

    SatCounter at_zero(4, 0);
    ASSERT_TRUE(at_zero.zero());
    EXPECT_FALSE(at_zero.sub(0));
    EXPECT_EQ(at_zero.value(), 0u);
}

// ------------------------------------------------------- saturating helpers

TEST(Saturating, AddClampsAtMax)
{
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(satAdd(2, 3), 5u);
    EXPECT_EQ(satAdd(top, 0), top);
    EXPECT_EQ(satAdd(top, 1), top);
    EXPECT_EQ(satAdd(top - 1, 1), top);
    EXPECT_EQ(satAdd(top, top), top);
}

TEST(Saturating, MulClampsAtMax)
{
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(satMul(6, 7), 42u);
    EXPECT_EQ(satMul(0, top), 0u);
    EXPECT_EQ(satMul(top, 0), 0u);
    EXPECT_EQ(satMul(top, 1), top);
    EXPECT_EQ(satMul(top, 2), top);
    EXPECT_EQ(satMul(1u << 31, 1ull << 34), top);
}

TEST(Saturating, BudgetExpressionDoesNotWrap)
{
    // The engine's step budget, max_insts * 4 + 1024, at the
    // run-to-completion sentinel.
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(satAdd(satMul(top, 4), 1024), top);
    EXPECT_EQ(satAdd(satMul(100, 4), 1024), 1424u);
}

// ------------------------------------------------------------------- BitSet

TEST(BitSet, SetTestClear)
{
    BitSet b(130);
    EXPECT_FALSE(b.test(0));
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(65));
    b.clear(64);
    EXPECT_FALSE(b.test(64));
}

TEST(BitSet, CountAndForEach)
{
    BitSet b(200);
    const std::vector<std::size_t> bits{1, 63, 64, 127, 199};
    for (auto i : bits)
        b.set(i);
    EXPECT_EQ(b.count(), bits.size());
    std::vector<std::size_t> seen;
    b.forEach([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, bits);
}

TEST(BitSet, UnionWithReportsChange)
{
    BitSet a(100), b(100);
    b.set(42);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // already included
    EXPECT_TRUE(a.test(42));
}

TEST(BitSet, Subtract)
{
    BitSet a(70), b(70);
    a.set(3);
    a.set(69);
    b.set(3);
    a.subtract(b);
    EXPECT_FALSE(a.test(3));
    EXPECT_TRUE(a.test(69));
}

TEST(BitSet, Equality)
{
    BitSet a(64), b(64);
    EXPECT_EQ(a, b);
    a.set(5);
    EXPECT_FALSE(a == b);
    b.set(5);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.real();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        lo |= (v == 3);
        hi |= (v == 5);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Uniform01, PureFunctionOfStreamAndIndex)
{
    EXPECT_EQ(uniform01(5, 17), uniform01(5, 17));
    EXPECT_NE(uniform01(5, 17), uniform01(5, 18));
    EXPECT_NE(uniform01(5, 17), uniform01(6, 17));
}

TEST(Uniform01, RoughlyUniform)
{
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += uniform01(99, static_cast<std::uint64_t>(i));
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// -------------------------------------------------------------------- Stats

TEST(Accumulator, MeanMinMax)
{
    Accumulator a;
    a.add(1.0);
    a.add(3.0);
    a.add(8.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(GeoMean, MultiplicativeAverage)
{
    GeoMean g;
    g.add(2.0);
    g.add(8.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-12);
}

TEST(GeoMean, IgnoresNonPositive)
{
    GeoMean g;
    g.add(4.0);
    g.add(0.0);
    g.add(-3.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-12);
    EXPECT_EQ(g.count(), 1u);
}

// ------------------------------------------------------------- TablePrinter

TEST(TablePrinter, FormatsNumbers)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::pct(0.815, 1), "81.5%");
}

TEST(TablePrinter, CountsDataRows)
{
    TablePrinter t;
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"h1", "h2"});
    EXPECT_EQ(t.rows(), 0u); // header only
    t.addRow({"a", "b"});
    t.addRow({"c", "d"});
    EXPECT_EQ(t.rows(), 2u);
}

} // namespace
