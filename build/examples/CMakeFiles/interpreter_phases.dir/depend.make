# Empty dependencies file for interpreter_phases.
# This may be replaced when dependencies are built.
