file(REMOVE_RECURSE
  "CMakeFiles/interpreter_phases.dir/interpreter_phases.cpp.o"
  "CMakeFiles/interpreter_phases.dir/interpreter_phases.cpp.o.d"
  "interpreter_phases"
  "interpreter_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
