# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/hsd_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/package_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/signature_test[1]_include.cmake")
include("/root/repo/build/tests/sink_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dynlaunch_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/unroll_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
