# Empty compiler generated dependencies file for hsd_test.
# This may be replaced when dependencies are built.
