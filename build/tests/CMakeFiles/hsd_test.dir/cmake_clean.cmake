file(REMOVE_RECURSE
  "CMakeFiles/hsd_test.dir/hsd_test.cc.o"
  "CMakeFiles/hsd_test.dir/hsd_test.cc.o.d"
  "hsd_test"
  "hsd_test.pdb"
  "hsd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
