file(REMOVE_RECURSE
  "libvp_test_helpers.a"
)
