# Empty compiler generated dependencies file for vp_test_helpers.
# This may be replaced when dependencies are built.
