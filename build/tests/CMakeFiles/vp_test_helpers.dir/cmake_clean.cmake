file(REMOVE_RECURSE
  "CMakeFiles/vp_test_helpers.dir/helpers.cc.o"
  "CMakeFiles/vp_test_helpers.dir/helpers.cc.o.d"
  "libvp_test_helpers.a"
  "libvp_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
