
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vp/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/vp_test_helpers.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/vp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/package/CMakeFiles/vp_package.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/vp_region.dir/DependInfo.cmake"
  "/root/repo/build/src/hsd/CMakeFiles/vp_hsd.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
