# Empty dependencies file for dynlaunch_test.
# This may be replaced when dependencies are built.
