file(REMOVE_RECURSE
  "CMakeFiles/dynlaunch_test.dir/dynlaunch_test.cc.o"
  "CMakeFiles/dynlaunch_test.dir/dynlaunch_test.cc.o.d"
  "dynlaunch_test"
  "dynlaunch_test.pdb"
  "dynlaunch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynlaunch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
