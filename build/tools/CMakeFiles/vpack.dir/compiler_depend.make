# Empty compiler generated dependencies file for vpack.
# This may be replaced when dependencies are built.
