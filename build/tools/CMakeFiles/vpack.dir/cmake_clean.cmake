file(REMOVE_RECURSE
  "CMakeFiles/vpack.dir/vpack.cc.o"
  "CMakeFiles/vpack.dir/vpack.cc.o.d"
  "vpack"
  "vpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
