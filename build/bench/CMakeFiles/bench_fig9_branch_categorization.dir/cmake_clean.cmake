file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_branch_categorization.dir/bench_fig9_branch_categorization.cc.o"
  "CMakeFiles/bench_fig9_branch_categorization.dir/bench_fig9_branch_categorization.cc.o.d"
  "bench_fig9_branch_categorization"
  "bench_fig9_branch_categorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_branch_categorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
