# Empty compiler generated dependencies file for bench_fig9_branch_categorization.
# This may be replaced when dependencies are built.
