file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynlaunch.dir/bench_ablation_dynlaunch.cc.o"
  "CMakeFiles/bench_ablation_dynlaunch.dir/bench_ablation_dynlaunch.cc.o.d"
  "bench_ablation_dynlaunch"
  "bench_ablation_dynlaunch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynlaunch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
