# Empty dependencies file for bench_ablation_dynlaunch.
# This may be replaced when dependencies are built.
