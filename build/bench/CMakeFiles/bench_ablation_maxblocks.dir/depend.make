# Empty dependencies file for bench_ablation_maxblocks.
# This may be replaced when dependencies are built.
