file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maxblocks.dir/bench_ablation_maxblocks.cc.o"
  "CMakeFiles/bench_ablation_maxblocks.dir/bench_ablation_maxblocks.cc.o.d"
  "bench_ablation_maxblocks"
  "bench_ablation_maxblocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maxblocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
