# Empty compiler generated dependencies file for bench_table3_expansion.
# This may be replaced when dependencies are built.
