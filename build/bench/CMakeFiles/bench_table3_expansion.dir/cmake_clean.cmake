file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_expansion.dir/bench_table3_expansion.cc.o"
  "CMakeFiles/bench_table3_expansion.dir/bench_table3_expansion.cc.o.d"
  "bench_table3_expansion"
  "bench_table3_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
