file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_machine.dir/bench_table2_machine.cc.o"
  "CMakeFiles/bench_table2_machine.dir/bench_table2_machine.cc.o.d"
  "bench_table2_machine"
  "bench_table2_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
