file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bbb.dir/bench_ablation_bbb.cc.o"
  "CMakeFiles/bench_ablation_bbb.dir/bench_ablation_bbb.cc.o.d"
  "bench_ablation_bbb"
  "bench_ablation_bbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
