# Empty compiler generated dependencies file for bench_ablation_bbb.
# This may be replaced when dependencies are built.
