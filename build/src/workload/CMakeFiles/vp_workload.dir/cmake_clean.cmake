file(REMOVE_RECURSE
  "CMakeFiles/vp_workload.dir/behavior.cc.o"
  "CMakeFiles/vp_workload.dir/behavior.cc.o.d"
  "CMakeFiles/vp_workload.dir/benchmarks.cc.o"
  "CMakeFiles/vp_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/vp_workload.dir/builder.cc.o"
  "CMakeFiles/vp_workload.dir/builder.cc.o.d"
  "libvp_workload.a"
  "libvp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
