file(REMOVE_RECURSE
  "libvp_workload.a"
)
