# Empty dependencies file for vp_workload.
# This may be replaced when dependencies are built.
