
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/workload/CMakeFiles/vp_workload.dir/behavior.cc.o" "gcc" "src/workload/CMakeFiles/vp_workload.dir/behavior.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/workload/CMakeFiles/vp_workload.dir/benchmarks.cc.o" "gcc" "src/workload/CMakeFiles/vp_workload.dir/benchmarks.cc.o.d"
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/vp_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/vp_workload.dir/builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
