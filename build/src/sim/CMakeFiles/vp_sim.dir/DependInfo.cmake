
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/vp_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/vp_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/predictor.cc" "src/sim/CMakeFiles/vp_sim.dir/predictor.cc.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
