file(REMOVE_RECURSE
  "libvp_opt.a"
)
