
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/layout.cc" "src/opt/CMakeFiles/vp_opt.dir/layout.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/layout.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/vp_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/schedule.cc" "src/opt/CMakeFiles/vp_opt.dir/schedule.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/schedule.cc.o.d"
  "/root/repo/src/opt/sink.cc" "src/opt/CMakeFiles/vp_opt.dir/sink.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/sink.cc.o.d"
  "/root/repo/src/opt/unroll.cc" "src/opt/CMakeFiles/vp_opt.dir/unroll.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/unroll.cc.o.d"
  "/root/repo/src/opt/weights.cc" "src/opt/CMakeFiles/vp_opt.dir/weights.cc.o" "gcc" "src/opt/CMakeFiles/vp_opt.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
