file(REMOVE_RECURSE
  "CMakeFiles/vp_opt.dir/layout.cc.o"
  "CMakeFiles/vp_opt.dir/layout.cc.o.d"
  "CMakeFiles/vp_opt.dir/optimizer.cc.o"
  "CMakeFiles/vp_opt.dir/optimizer.cc.o.d"
  "CMakeFiles/vp_opt.dir/schedule.cc.o"
  "CMakeFiles/vp_opt.dir/schedule.cc.o.d"
  "CMakeFiles/vp_opt.dir/sink.cc.o"
  "CMakeFiles/vp_opt.dir/sink.cc.o.d"
  "CMakeFiles/vp_opt.dir/unroll.cc.o"
  "CMakeFiles/vp_opt.dir/unroll.cc.o.d"
  "CMakeFiles/vp_opt.dir/weights.cc.o"
  "CMakeFiles/vp_opt.dir/weights.cc.o.d"
  "libvp_opt.a"
  "libvp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
