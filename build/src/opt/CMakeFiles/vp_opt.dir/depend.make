# Empty dependencies file for vp_opt.
# This may be replaced when dependencies are built.
