file(REMOVE_RECURSE
  "libvp_package.a"
)
