file(REMOVE_RECURSE
  "CMakeFiles/vp_package.dir/linker.cc.o"
  "CMakeFiles/vp_package.dir/linker.cc.o.d"
  "CMakeFiles/vp_package.dir/packager.cc.o"
  "CMakeFiles/vp_package.dir/packager.cc.o.d"
  "CMakeFiles/vp_package.dir/pruned.cc.o"
  "CMakeFiles/vp_package.dir/pruned.cc.o.d"
  "libvp_package.a"
  "libvp_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
