# Empty compiler generated dependencies file for vp_package.
# This may be replaced when dependencies are built.
