
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/package/linker.cc" "src/package/CMakeFiles/vp_package.dir/linker.cc.o" "gcc" "src/package/CMakeFiles/vp_package.dir/linker.cc.o.d"
  "/root/repo/src/package/packager.cc" "src/package/CMakeFiles/vp_package.dir/packager.cc.o" "gcc" "src/package/CMakeFiles/vp_package.dir/packager.cc.o.d"
  "/root/repo/src/package/pruned.cc" "src/package/CMakeFiles/vp_package.dir/pruned.cc.o" "gcc" "src/package/CMakeFiles/vp_package.dir/pruned.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/vp_region.dir/DependInfo.cmake"
  "/root/repo/build/src/hsd/CMakeFiles/vp_hsd.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
