file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/evaluate.cc.o"
  "CMakeFiles/vp_core.dir/evaluate.cc.o.d"
  "CMakeFiles/vp_core.dir/pipeline.cc.o"
  "CMakeFiles/vp_core.dir/pipeline.cc.o.d"
  "CMakeFiles/vp_core.dir/report.cc.o"
  "CMakeFiles/vp_core.dir/report.cc.o.d"
  "CMakeFiles/vp_core.dir/run_cache.cc.o"
  "CMakeFiles/vp_core.dir/run_cache.cc.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
