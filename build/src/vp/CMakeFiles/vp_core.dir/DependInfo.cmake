
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vp/evaluate.cc" "src/vp/CMakeFiles/vp_core.dir/evaluate.cc.o" "gcc" "src/vp/CMakeFiles/vp_core.dir/evaluate.cc.o.d"
  "/root/repo/src/vp/pipeline.cc" "src/vp/CMakeFiles/vp_core.dir/pipeline.cc.o" "gcc" "src/vp/CMakeFiles/vp_core.dir/pipeline.cc.o.d"
  "/root/repo/src/vp/report.cc" "src/vp/CMakeFiles/vp_core.dir/report.cc.o" "gcc" "src/vp/CMakeFiles/vp_core.dir/report.cc.o.d"
  "/root/repo/src/vp/run_cache.cc" "src/vp/CMakeFiles/vp_core.dir/run_cache.cc.o" "gcc" "src/vp/CMakeFiles/vp_core.dir/run_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsd/CMakeFiles/vp_hsd.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/vp_region.dir/DependInfo.cmake"
  "/root/repo/build/src/package/CMakeFiles/vp_package.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
