file(REMOVE_RECURSE
  "CMakeFiles/vp_trace.dir/engine.cc.o"
  "CMakeFiles/vp_trace.dir/engine.cc.o.d"
  "libvp_trace.a"
  "libvp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
