file(REMOVE_RECURSE
  "libvp_trace.a"
)
