# Empty compiler generated dependencies file for vp_trace.
# This may be replaced when dependencies are built.
