file(REMOVE_RECURSE
  "CMakeFiles/vp_support.dir/logging.cc.o"
  "CMakeFiles/vp_support.dir/logging.cc.o.d"
  "CMakeFiles/vp_support.dir/table.cc.o"
  "CMakeFiles/vp_support.dir/table.cc.o.d"
  "CMakeFiles/vp_support.dir/thread_pool.cc.o"
  "CMakeFiles/vp_support.dir/thread_pool.cc.o.d"
  "libvp_support.a"
  "libvp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
