file(REMOVE_RECURSE
  "libvp_ir.a"
)
