file(REMOVE_RECURSE
  "CMakeFiles/vp_ir.dir/call_graph.cc.o"
  "CMakeFiles/vp_ir.dir/call_graph.cc.o.d"
  "CMakeFiles/vp_ir.dir/cfg.cc.o"
  "CMakeFiles/vp_ir.dir/cfg.cc.o.d"
  "CMakeFiles/vp_ir.dir/function.cc.o"
  "CMakeFiles/vp_ir.dir/function.cc.o.d"
  "CMakeFiles/vp_ir.dir/instruction.cc.o"
  "CMakeFiles/vp_ir.dir/instruction.cc.o.d"
  "CMakeFiles/vp_ir.dir/liveness.cc.o"
  "CMakeFiles/vp_ir.dir/liveness.cc.o.d"
  "CMakeFiles/vp_ir.dir/print.cc.o"
  "CMakeFiles/vp_ir.dir/print.cc.o.d"
  "CMakeFiles/vp_ir.dir/program.cc.o"
  "CMakeFiles/vp_ir.dir/program.cc.o.d"
  "CMakeFiles/vp_ir.dir/verify.cc.o"
  "CMakeFiles/vp_ir.dir/verify.cc.o.d"
  "libvp_ir.a"
  "libvp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
