
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/call_graph.cc" "src/ir/CMakeFiles/vp_ir.dir/call_graph.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/call_graph.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/vp_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/ir/CMakeFiles/vp_ir.dir/function.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/function.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/ir/CMakeFiles/vp_ir.dir/instruction.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/instruction.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/ir/CMakeFiles/vp_ir.dir/liveness.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/liveness.cc.o.d"
  "/root/repo/src/ir/print.cc" "src/ir/CMakeFiles/vp_ir.dir/print.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/print.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/vp_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/program.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/ir/CMakeFiles/vp_ir.dir/verify.cc.o" "gcc" "src/ir/CMakeFiles/vp_ir.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
