# Empty compiler generated dependencies file for vp_ir.
# This may be replaced when dependencies are built.
