# Empty dependencies file for vp_hsd.
# This may be replaced when dependencies are built.
