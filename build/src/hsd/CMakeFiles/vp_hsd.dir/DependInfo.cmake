
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsd/bbb.cc" "src/hsd/CMakeFiles/vp_hsd.dir/bbb.cc.o" "gcc" "src/hsd/CMakeFiles/vp_hsd.dir/bbb.cc.o.d"
  "/root/repo/src/hsd/detector.cc" "src/hsd/CMakeFiles/vp_hsd.dir/detector.cc.o" "gcc" "src/hsd/CMakeFiles/vp_hsd.dir/detector.cc.o.d"
  "/root/repo/src/hsd/filter.cc" "src/hsd/CMakeFiles/vp_hsd.dir/filter.cc.o" "gcc" "src/hsd/CMakeFiles/vp_hsd.dir/filter.cc.o.d"
  "/root/repo/src/hsd/record.cc" "src/hsd/CMakeFiles/vp_hsd.dir/record.cc.o" "gcc" "src/hsd/CMakeFiles/vp_hsd.dir/record.cc.o.d"
  "/root/repo/src/hsd/signature.cc" "src/hsd/CMakeFiles/vp_hsd.dir/signature.cc.o" "gcc" "src/hsd/CMakeFiles/vp_hsd.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/vp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
