file(REMOVE_RECURSE
  "CMakeFiles/vp_hsd.dir/bbb.cc.o"
  "CMakeFiles/vp_hsd.dir/bbb.cc.o.d"
  "CMakeFiles/vp_hsd.dir/detector.cc.o"
  "CMakeFiles/vp_hsd.dir/detector.cc.o.d"
  "CMakeFiles/vp_hsd.dir/filter.cc.o"
  "CMakeFiles/vp_hsd.dir/filter.cc.o.d"
  "CMakeFiles/vp_hsd.dir/record.cc.o"
  "CMakeFiles/vp_hsd.dir/record.cc.o.d"
  "CMakeFiles/vp_hsd.dir/signature.cc.o"
  "CMakeFiles/vp_hsd.dir/signature.cc.o.d"
  "libvp_hsd.a"
  "libvp_hsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_hsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
