file(REMOVE_RECURSE
  "libvp_hsd.a"
)
