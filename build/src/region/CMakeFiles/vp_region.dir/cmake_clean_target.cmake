file(REMOVE_RECURSE
  "libvp_region.a"
)
