# Empty compiler generated dependencies file for vp_region.
# This may be replaced when dependencies are built.
