file(REMOVE_RECURSE
  "CMakeFiles/vp_region.dir/identify.cc.o"
  "CMakeFiles/vp_region.dir/identify.cc.o.d"
  "CMakeFiles/vp_region.dir/region.cc.o"
  "CMakeFiles/vp_region.dir/region.cc.o.d"
  "libvp_region.a"
  "libvp_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
